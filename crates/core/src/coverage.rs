//! Coverage recommenders (§III-B): the `c(i)` component of the GANC value
//! function. All scores lie in `(0, 1]` so they share a scale with the
//! accuracy component.
//!
//! The serving hot path never fills a full-catalog coverage buffer: every
//! coverage state hands out a [`CoverageView`] — a cheap per-request view
//! that scores *candidate items only*. `Stat` and `Dyn` keep their
//! `1/√(f+1)` score vectors cached (updated incrementally on writes, so
//! reads never pay a sqrt pass), and the OSLG frequency snapshots are
//! stored delta-encoded (§III-C produces consecutive snapshots that differ
//! by exactly the N items just assigned) with periodic dense checkpoints
//! for `O(N·√S)`-style reconstruction instead of `O(S·|I|)` dense storage.

use ganc_dataset::{Interactions, ItemId, UserId};
use ganc_recommender::random::unit_hash;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// The paper's coverage gain: `1/√(f + 1)`.
#[inline]
fn gain(frequency: u32) -> f64 {
    1.0 / ((frequency as f64) + 1.0).sqrt()
}

/// Which coverage recommender a GANC variant uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CoverageKind {
    /// `c(i) ~ unif(0,1)` — maximal-coverage control (Rand).
    Random,
    /// `c(i) = 1/√(f_i^R + 1)` — static inverse train-popularity (Stat).
    Static,
    /// `c(i) = 1/√(f_i^A + 1)` over the recommendations already assigned —
    /// diminishing returns (Dyn).
    Dynamic,
}

impl CoverageKind {
    /// Display label matching the paper (`Rand` / `Stat` / `Dyn`).
    pub fn label(&self) -> &'static str {
        match self {
            CoverageKind::Random => "Rand",
            CoverageKind::Static => "Stat",
            CoverageKind::Dynamic => "Dyn",
        }
    }
}

/// One request's resolved coverage scores, consumed candidate-by-candidate
/// by the fused scorer in [`crate::query::UserQuery`] — no full-catalog
/// buffer is ever materialized.
///
/// Items must be scored in **ascending item id** order (the candidate
/// iterators guarantee this); [`CoverageView::scorer`] returns the cursor
/// that exploits it.
#[derive(Debug)]
pub enum CoverageView<'a> {
    /// A cached dense score vector (Stat, Dyn, snapshot checkpoints).
    Dense(&'a [f64]),
    /// Scores hashed on demand per `(seed, user, item)` (Rand).
    Hashed {
        /// Run seed.
        seed: u64,
        /// Requesting user.
        user: u32,
    },
    /// A checkpoint score vector plus a sparse overlay of `(item, score)`
    /// pairs sorted by item id (delta-reconstructed snapshots).
    Patched {
        /// Dense checkpoint scores.
        base: &'a [f64],
        /// Items whose score differs from the checkpoint, ascending.
        overlay: &'a [(u32, f64)],
    },
}

impl<'a> CoverageView<'a> {
    /// Random-access score of one item (tests and one-off lookups; the hot
    /// path uses [`CoverageView::scorer`]).
    pub fn score_at(&self, item: u32) -> f64 {
        match self {
            CoverageView::Dense(s) => s[item as usize],
            CoverageView::Hashed { seed, user } => unit_hash(*seed, *user, item),
            CoverageView::Patched { base, overlay } => {
                match overlay.binary_search_by_key(&item, |e| e.0) {
                    Ok(k) => overlay[k].1,
                    Err(_) => base[item as usize],
                }
            }
        }
    }

    /// A sequential scoring cursor. Items **must** be queried in ascending
    /// id order; the overlay merge then costs `O(|overlay|)` for the whole
    /// request instead of a binary search per candidate.
    pub fn scorer<'v>(&'v self) -> ViewScorer<'v, 'a> {
        ViewScorer { view: self, pos: 0 }
    }
}

/// Sequential cursor over a [`CoverageView`] (ascending item ids).
#[derive(Debug)]
pub struct ViewScorer<'v, 'a> {
    view: &'v CoverageView<'a>,
    pos: usize,
}

impl ViewScorer<'_, '_> {
    /// Coverage score of `item`; `item` must not decrease across calls.
    #[inline]
    pub fn score(&mut self, item: u32) -> f64 {
        match self.view {
            CoverageView::Dense(s) => s[item as usize],
            CoverageView::Hashed { seed, user } => unit_hash(*seed, *user, item),
            CoverageView::Patched { base, overlay } => {
                while self.pos < overlay.len() && overlay[self.pos].0 < item {
                    self.pos += 1;
                }
                match overlay.get(self.pos) {
                    Some(&(i, s)) if i == item => s,
                    _ => base[item as usize],
                }
            }
        }
    }
}

/// Random coverage: a deterministic per-`(seed, user, item)` uniform score.
/// The paper redraws per run; vary the seed across runs to reproduce that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RandCoverage {
    seed: u64,
}

impl RandCoverage {
    /// Create with a run seed.
    pub fn new(seed: u64) -> RandCoverage {
        RandCoverage { seed }
    }

    /// Fill the coverage score buffer for one user.
    pub fn scores_for(&self, user: UserId, out: &mut [f64]) {
        for (i, o) in out.iter_mut().enumerate() {
            *o = unit_hash(self.seed, user.0, i as u32);
        }
    }

    /// The per-request view (hashes on demand, no buffer).
    pub fn view_for(&self, user: UserId) -> CoverageView<'_> {
        CoverageView::Hashed {
            seed: self.seed,
            user: user.0,
        }
    }
}

/// Static coverage: monotone decreasing in train popularity,
/// `c(i) = 1/√(f_i^R + 1)` (§III-B). The gain of recommending an item is
/// constant — the paper shows this focuses on a small subset of tail items
/// and is the weakest coverage recommender.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StatCoverage {
    scores: Vec<f64>,
}

impl StatCoverage {
    /// Precompute from the train set.
    pub fn fit(train: &Interactions) -> StatCoverage {
        StatCoverage::from_popularity(&train.item_popularity())
    }

    /// Rebuild from a raw popularity vector `f^R` (one count per item).
    pub fn from_popularity(popularity: &[u32]) -> StatCoverage {
        let scores = popularity.iter().map(|&f| gain(f)).collect();
        StatCoverage { scores }
    }

    /// Refresh one item's score after its popularity changed to `count` —
    /// the `O(touched items)` ingestion path. Identical to a full
    /// [`StatCoverage::from_popularity`] rebuild for that item.
    #[inline]
    pub fn set_count(&mut self, item: ItemId, count: u32) {
        self.scores[item.idx()] = gain(count);
    }

    /// The static score of one item.
    #[inline]
    pub fn score(&self, item: ItemId) -> f64 {
        self.scores[item.idx()]
    }

    /// All scores, indexed by item id.
    #[inline]
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }
}

/// Dynamic coverage: `c(i) = 1/√(f_i^A + 1)` where `f^A` counts how often
/// `i` appears in the recommendations assigned **so far** (§III-B).
///
/// Recommending an item has diminishing returns — `c(i) = 1` while the item
/// is unrecommended and decays as it spreads — which makes the aggregate
/// objective submodular (Appendix B) and drives the coverage gains of
/// GANC(·,·,Dyn).
///
/// The score vector is cached and maintained incrementally: an
/// [`DynCoverage::observe`] of N items updates N cached scores, so reads
/// (`O(|U|)` of them in the OSLG seed phase) never pay an `O(|I|)` sqrt
/// pass.
#[derive(Debug, Clone, PartialEq)]
pub struct DynCoverage {
    counts: Vec<u32>,
    scores: Vec<f64>,
}

impl DynCoverage {
    /// Start with an empty assignment (`f^A = 0`, every score 1).
    pub fn new(n_items: u32) -> DynCoverage {
        DynCoverage {
            counts: vec![0; n_items as usize],
            scores: vec![1.0; n_items as usize],
        }
    }

    /// Resume from a stored assignment-frequency snapshot (OSLG's `F(θ_s)`).
    pub fn from_snapshot(counts: &[u32]) -> DynCoverage {
        DynCoverage {
            scores: counts.iter().map(|&f| gain(f)).collect(),
            counts: counts.to_vec(),
        }
    }

    /// Current score of one item.
    #[inline]
    pub fn score(&self, item: ItemId) -> f64 {
        self.scores[item.idx()]
    }

    /// The cached score vector, indexed by item id.
    #[inline]
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Fill a score buffer for the current state.
    pub fn scores_into(&self, out: &mut [f64]) {
        out.copy_from_slice(&self.scores);
    }

    /// Record an assigned top-N set (Algorithm 1, line 7): N count bumps
    /// and N cached-score refreshes, independent of `|I|`.
    pub fn observe(&mut self, assigned: &[ItemId]) {
        for item in assigned {
            let k = item.idx();
            self.counts[k] += 1;
            self.scores[k] = gain(self.counts[k]);
        }
    }

    /// Snapshot the assignment frequencies (Algorithm 1, line 8 stores
    /// `F(θ_u) ← f`).
    pub fn snapshot(&self) -> Box<[u32]> {
        self.counts.clone().into_boxed_slice()
    }

    /// Current assignment frequency of an item (`f_i^A`).
    #[inline]
    pub fn frequency(&self, item: ItemId) -> u32 {
        self.counts[item.idx()]
    }
}

// Hand-written serde: only the counts travel on the wire (the cached score
// vector is derived state, rebuilt on decode). This keeps the wire shape
// identical to the format-v1 encoding, so old artifacts stay readable.
impl Serialize for DynCoverage {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        self.counts.serialize(s)
    }
}

impl<'de> Deserialize<'de> for DynCoverage {
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        let counts = Vec::<u32>::deserialize(d)?;
        Ok(DynCoverage::from_snapshot(&counts))
    }
}

/// Dense state every this many chain steps. Reconstruction of an arbitrary
/// snapshot replays at most this many sparse deltas onto a checkpoint.
/// Memory for the derived checkpoints is `O(S/K · |I|)` — at the paper's
/// `S = 500` this is ~32 dense vectors instead of 500.
const CHECKPOINT_EVERY: usize = 16;

/// A dense materialization of one chain state (derived, never serialized).
#[derive(Debug, Clone, PartialEq)]
struct Checkpoint {
    counts: Box<[u32]>,
    scores: Box<[f64]>,
}

impl Checkpoint {
    fn from_counts(counts: &[u32]) -> Checkpoint {
        Checkpoint {
            scores: counts.iter().map(|&f| gain(f)).collect(),
            counts: counts.to_vec().into_boxed_slice(),
        }
    }
}

/// Fold a sparse delta into a sorted `(item, accumulated change)` list.
fn merge_delta(running: &mut Vec<(u32, i64)>, delta: &[(u32, i64)]) {
    if delta.is_empty() {
        return;
    }
    let mut d: Vec<(u32, i64)> = delta.to_vec();
    d.sort_unstable_by_key(|e| e.0);
    d.dedup_by(|b, a| {
        if a.0 == b.0 {
            a.1 += b.1;
            true
        } else {
            false
        }
    });
    let mut merged = Vec::with_capacity(running.len() + d.len());
    let (mut ai, mut bi) = (0usize, 0usize);
    while ai < running.len() || bi < d.len() {
        match (running.get(ai), d.get(bi)) {
            (Some(&(ri, rc)), Some(&(di, dc))) => {
                if ri < di {
                    merged.push((ri, rc));
                    ai += 1;
                } else if di < ri {
                    merged.push((di, dc));
                    bi += 1;
                } else {
                    merged.push((ri, rc + dc));
                    ai += 1;
                    bi += 1;
                }
            }
            (Some(&e), None) => {
                merged.push(e);
                ai += 1;
            }
            (None, Some(&e)) => {
                merged.push(e);
                bi += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    *running = merged;
}

/// The assignment-frequency snapshots OSLG's sequential phase produces —
/// `F(θ_s)` for each sampled user `s` (Algorithm 1, line 8), kept sorted by
/// θ so any user can be served from the snapshot of the nearest sampled θ
/// (lines 11–15).
///
/// This is the shared coverage state an online query path scores against:
/// it is immutable after the sequential phase, so any number of concurrent
/// single-user queries can read it without coordination.
///
/// ## Storage
///
/// Consecutive sequential-phase snapshots differ by exactly the N items
/// just assigned, so the store keeps **sparse signed deltas** in push
/// order (the *chain*) instead of `S` dense count vectors — `O(|I| + S·N)`
/// memory and serialized bytes instead of `O(S·|I|)`. Dense
/// count+score checkpoints every [`CHECKPOINT_EVERY`] chain steps (derived
/// state, rebuilt on load) bound per-request reconstruction to a bounded
/// sparse overlay on top of a checkpoint. θ order is a permutation
/// (`chain`) over the chain, so [`CoverageSnapshots::sort_by_theta`] never
/// touches the deltas.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageSnapshots {
    /// θ of each stored snapshot, ascending.
    thetas: Vec<f64>,
    /// Chain position of the snapshot at each sorted-θ position.
    chain: Vec<u32>,
    /// Sparse signed deltas in push order: `deltas[k]` transforms chain
    /// state `k−1` into state `k`; state `−1` is all-zero counts.
    deltas: Vec<Box<[(u32, i64)]>>,
    /// Catalog size (0 until the first push fixes it).
    n_items: usize,
    /// `checkpoints[j]` = dense chain state `j·CHECKPOINT_EVERY − 1`
    /// (`j = 0` is the all-zero state). Derived, not serialized.
    checkpoints: Vec<Checkpoint>,
    /// `overlays[k]` = the sorted `(item, score)` pairs in which chain
    /// state `k` differs from its segment's checkpoint — the per-request
    /// view is a slice lookup, no reconstruction. Derived, not serialized.
    overlays: Vec<Box<[(u32, f64)]>>,
    /// Accumulated `(item, count change)` since the segment's checkpoint,
    /// sorted by item (push-time bookkeeping for `overlays`).
    running: Vec<(u32, i64)>,
    /// Dense counts at the end of the chain (for delta computation).
    tail: Vec<u32>,
}

impl CoverageSnapshots {
    /// An empty snapshot store (no sampled users yet). The catalog size is
    /// fixed by the first push.
    pub fn new() -> CoverageSnapshots {
        CoverageSnapshots {
            thetas: Vec::new(),
            chain: Vec::new(),
            deltas: Vec::new(),
            n_items: 0,
            checkpoints: Vec::new(),
            overlays: Vec::new(),
            running: Vec::new(),
            tail: Vec::new(),
        }
    }

    /// An empty store over a known catalog, ready for
    /// [`CoverageSnapshots::push_assigned`].
    pub fn for_items(n_items: u32) -> CoverageSnapshots {
        let mut s = CoverageSnapshots::new();
        s.ensure_dims(n_items as usize);
        s
    }

    fn ensure_dims(&mut self, n_items: usize) {
        if self.n_items == 0 && self.tail.is_empty() {
            self.n_items = n_items;
            self.tail = vec![0; n_items];
            self.checkpoints = vec![Checkpoint::from_counts(&self.tail)];
        }
    }

    /// Append one `(θ_s, F(θ_s))` pair as a dense count vector; the sparse
    /// delta against the previous push is computed here. Callers must push
    /// in increasing θ (the OSLG ordering produces this for free);
    /// [`CoverageSnapshots::sort_by_theta`] restores the invariant for
    /// arbitrary-order ablations.
    pub fn push(&mut self, theta: f64, snapshot: &[u32]) {
        self.ensure_dims(snapshot.len());
        assert_eq!(snapshot.len(), self.n_items, "snapshot must cover catalog");
        let delta: Box<[(u32, i64)]> = self
            .tail
            .iter()
            .zip(snapshot.iter())
            .enumerate()
            .filter(|(_, (&old, &new))| new != old)
            .map(|(i, (&old, &new))| (i as u32, new as i64 - old as i64))
            .collect();
        self.apply(theta, delta);
    }

    /// Append one snapshot as the list just assigned (Algorithm 1, line 8):
    /// the new state is the previous one plus one count per item in
    /// `assigned`. `O(N)`, no dense vector touched.
    pub fn push_assigned(&mut self, theta: f64, assigned: &[ItemId]) {
        assert!(
            self.n_items > 0 || assigned.is_empty(),
            "use for_items(n) or a dense push before push_assigned"
        );
        let delta: Box<[(u32, i64)]> = assigned.iter().map(|i| (i.0, 1)).collect();
        self.apply(theta, delta);
    }

    fn apply(&mut self, theta: f64, delta: Box<[(u32, i64)]>) {
        let k = self.deltas.len();
        self.chain.push(k as u32);
        self.deltas.push(delta);
        self.thetas.push(theta);
        self.derive_step(k);
    }

    /// Fold chain step `k` (already present in `deltas`) into the derived
    /// state: tail counts, the running since-checkpoint accumulator, and
    /// either a fresh checkpoint or the step's precomputed overlay.
    fn derive_step(&mut self, k: usize) {
        for &(i, ch) in self.deltas[k].iter() {
            let c = &mut self.tail[i as usize];
            *c = (*c as i64 + ch).max(0) as u32;
        }
        merge_delta(&mut self.running, &self.deltas[k]);
        if (k + 1).is_multiple_of(CHECKPOINT_EVERY) {
            self.checkpoints.push(Checkpoint::from_counts(&self.tail));
            self.running.clear();
            self.overlays.push(Box::new([]));
        } else {
            let cp = self.checkpoints.last().expect("base checkpoint exists");
            let overlay: Box<[(u32, f64)]> = self
                .running
                .iter()
                .map(|&(i, ch)| {
                    let count = (cp.counts[i as usize] as i64 + ch).max(0) as u32;
                    (i, gain(count))
                })
                .collect();
            self.overlays.push(overlay);
        }
    }

    /// Rebuild the derived state (checkpoints, overlays, tail) from the
    /// delta chain — after decode.
    fn rebuild_derived(&mut self) {
        self.tail = vec![0; self.n_items];
        self.checkpoints.clear();
        self.overlays.clear();
        self.running.clear();
        if self.n_items == 0 {
            return;
        }
        self.checkpoints.push(Checkpoint::from_counts(&self.tail));
        for k in 0..self.deltas.len() {
            self.derive_step(k);
        }
    }

    /// Number of stored snapshots.
    pub fn len(&self) -> usize {
        self.thetas.len()
    }

    /// Whether no snapshots are stored.
    pub fn is_empty(&self) -> bool {
        self.thetas.is_empty()
    }

    /// Catalog size the snapshots cover (0 for an empty store).
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Re-sort the store by θ (stable), for snapshots pushed out of order.
    /// Only the `(θ, chain position)` pairs move — the delta chain itself
    /// is order-independent and is never copied.
    pub fn sort_by_theta(&mut self) {
        let mut order: Vec<usize> = (0..self.thetas.len()).collect();
        order.sort_by(|&a, &b| {
            self.thetas[a]
                .partial_cmp(&self.thetas[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        self.thetas = order.iter().map(|&k| self.thetas[k]).collect();
        self.chain = order.iter().map(|&k| self.chain[k]).collect();
    }

    /// Index of the snapshot whose θ is nearest to `t`. Ties prefer the
    /// lower θ — the earlier, less tail-discounted snapshot.
    ///
    /// # Panics
    /// If the store is empty.
    pub fn nearest_idx(&self, t: f64) -> usize {
        let thetas = &self.thetas;
        assert!(!thetas.is_empty(), "no snapshots stored");
        let pos = thetas.partition_point(|&s| s < t);
        if pos == 0 {
            return 0;
        }
        if pos >= thetas.len() {
            return thetas.len() - 1;
        }
        let below = pos - 1;
        if (t - thetas[below]) <= (thetas[pos] - t) {
            below
        } else {
            pos
        }
    }

    /// Reconstruct the dense assignment frequencies of the snapshot at
    /// sorted position `idx` (checkpoint + bounded delta replay).
    pub fn counts_at(&self, idx: usize) -> Vec<u32> {
        let k = self.chain[idx] as usize;
        let j = (k + 1) / CHECKPOINT_EVERY;
        let mut counts = self.checkpoints[j].counts.to_vec();
        for d in &self.deltas[j * CHECKPOINT_EVERY..=k] {
            for &(i, ch) in d.iter() {
                let c = &mut counts[i as usize];
                *c = (*c as i64 + ch).max(0) as u32;
            }
        }
        counts
    }

    /// Reconstruct the dense assignment frequencies of the snapshot
    /// nearest to `t`.
    pub fn counts_near(&self, t: f64) -> Vec<u32> {
        self.counts_at(self.nearest_idx(t))
    }

    /// The per-request coverage view of the snapshot nearest to `t`: its
    /// segment checkpoint's score slice plus the snapshot's precomputed
    /// sparse overlay — an index lookup, nothing is reconstructed. Scores
    /// are bit-identical to a dense `1/√(f+1)` fill of the same snapshot.
    pub fn view_near(&self, t: f64) -> CoverageView<'_> {
        let k = self.chain[self.nearest_idx(t)] as usize;
        let cp = &self.checkpoints[(k + 1) / CHECKPOINT_EVERY];
        let overlay = &self.overlays[k];
        if overlay.is_empty() {
            CoverageView::Dense(&cp.scores)
        } else {
            CoverageView::Patched {
                base: &cp.scores,
                overlay,
            }
        }
    }

    /// Fill `out` with coverage scores `1/√(f+1)` from the snapshot nearest
    /// to `t` (the dense reference path; the fused scorer uses
    /// [`CoverageSnapshots::view_near`]).
    pub fn scores_near(&self, t: f64, out: &mut [f64]) {
        match self.view_near(t) {
            CoverageView::Dense(scores) => out.copy_from_slice(scores),
            CoverageView::Patched { base, overlay } => {
                out.copy_from_slice(base);
                for &(i, s) in overlay {
                    out[i as usize] = s;
                }
            }
            CoverageView::Hashed { .. } => unreachable!("snapshots are never hashed"),
        }
    }

    /// The stored θ values, ascending.
    pub fn thetas(&self) -> &[f64] {
        &self.thetas
    }

    /// The inclusive range of sorted snapshot positions any query
    /// θ ∈ `[lo, hi]` can resolve to — the sub-range a θ-band shard must
    /// hold to answer its band's requests exactly like the full store.
    ///
    /// `lo = f64::NEG_INFINITY` / `hi = f64::INFINITY` denote the open ends
    /// of the first and last band. Correctness rests on
    /// [`CoverageSnapshots::nearest_idx`] being monotone non-decreasing in
    /// its argument (with the lower-θ tie rule), so the possibly-nearest set
    /// for an interval is exactly `nearest_idx(lo)..=nearest_idx(hi)`.
    ///
    /// # Panics
    /// If the store is empty.
    pub fn band_range(&self, lo: f64, hi: f64) -> std::ops::RangeInclusive<usize> {
        assert!(lo <= hi, "band bounds out of order: [{lo}, {hi}]");
        self.nearest_idx(lo)..=self.nearest_idx(hi)
    }

    /// A new store holding only the snapshots at sorted positions `range`
    /// (half-open), re-encoded as a fresh delta chain over the same catalog.
    ///
    /// Counts are reconstructed exactly (they are integers), so every score
    /// the extracted store serves is bit-identical to the source store's for
    /// the same snapshot. Under the OSLG increasing-θ ordering, consecutive
    /// sorted snapshots differ by one assignment's `N` items, so the
    /// re-encoded chain is `O(|I| + band·N)` — the extracted store never
    /// pays for snapshots outside its band.
    pub fn extract_range(&self, range: std::ops::Range<usize>) -> CoverageSnapshots {
        assert!(
            range.end <= self.len(),
            "range {range:?} exceeds {} snapshots",
            self.len()
        );
        let mut out = if self.n_items > 0 {
            CoverageSnapshots::for_items(self.n_items as u32)
        } else {
            CoverageSnapshots::new()
        };
        for k in range {
            out.push(self.thetas[k], &self.counts_at(k));
        }
        out
    }

    /// The θ-band shard of this store: the sub-range any θ ∈ `[lo, hi)` (or
    /// the closed ends at ±∞) resolves into, as an owned store. Queries in
    /// the band against the slice return bit-identical views to queries
    /// against the full store: the slice's `nearest_idx` sees the same
    /// neighbor θs the full store's does for every in-band θ, and
    /// reconstruction is exact.
    ///
    /// # Panics
    /// If the store is empty.
    pub fn slice_band(&self, lo: f64, hi: f64) -> CoverageSnapshots {
        let r = self.band_range(lo, hi);
        self.extract_range(*r.start()..*r.end() + 1)
    }
}

impl Default for CoverageSnapshots {
    fn default() -> CoverageSnapshots {
        CoverageSnapshots::new()
    }
}

/// v2 wire sentinel: the first `u64` of a format-v1 payload is the θ vector
/// length (bounded by the sample size), so `u64::MAX` unambiguously marks
/// the delta-encoded layout.
const DELTA_WIRE_SENTINEL: u64 = u64::MAX;

// Hand-written serde. v2 writes the sentinel, catalog size, θs, the chain
// permutation, and the sparse deltas — `O(|I| + S·N)` bytes. A payload
// without the sentinel is the legacy dense v1 layout
// (`thetas: Vec<f64>, counts: Vec<Box<[u32]>>`) and is converted to delta
// form on decode. Checkpoints and tail are derived and rebuilt either way.
impl Serialize for CoverageSnapshots {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        s.put_u64(DELTA_WIRE_SENTINEL)?;
        s.put_u64(self.n_items as u64)?;
        self.thetas.serialize(s)?;
        self.chain.serialize(s)?;
        s.begin_seq(self.deltas.len())?;
        for d in &self.deltas {
            s.begin_seq(d.len())?;
            for &(i, ch) in d.iter() {
                s.put_u32(i)?;
                s.put_i64(ch)?;
            }
        }
        Ok(())
    }
}

impl<'de> Deserialize<'de> for CoverageSnapshots {
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        let first = d.get_u64()?;
        let mut out = CoverageSnapshots::new();
        if first == DELTA_WIRE_SENTINEL {
            out.n_items = d.get_u64()? as usize;
            out.thetas = Vec::<f64>::deserialize(d)?;
            out.chain = Vec::<u32>::deserialize(d)?;
            let n_deltas = d.get_seq_len()?;
            out.deltas = Vec::with_capacity(n_deltas);
            for _ in 0..n_deltas {
                let len = d.get_seq_len()?;
                let mut delta = Vec::with_capacity(len);
                for _ in 0..len {
                    let i = d.get_u32()?;
                    let ch = d.get_i64()?;
                    delta.push((i, ch));
                }
                out.deltas.push(delta.into_boxed_slice());
            }
            if out.thetas.len() != out.chain.len() || out.deltas.len() != out.chain.len() {
                return Err(d.invalid("CoverageSnapshots chain lengths"));
            }
            // A corrupt payload must surface as a decode error, not a
            // panic in derived-state rebuilding or a later request.
            let n_deltas = out.deltas.len() as u32;
            if out.chain.iter().any(|&k| k >= n_deltas) {
                return Err(d.invalid("CoverageSnapshots chain index"));
            }
            let n_items = out.n_items as u32;
            if out
                .deltas
                .iter()
                .any(|delta| delta.iter().any(|&(i, _)| i >= n_items))
            {
                return Err(d.invalid("CoverageSnapshots delta item id"));
            }
        } else {
            // Legacy dense v1 layout: `first` is the θ vector length.
            let mut thetas = Vec::with_capacity((first as usize).min(1 << 20));
            for _ in 0..first {
                thetas.push(d.get_f64()?);
            }
            let counts = Vec::<Box<[u32]>>::deserialize(d)?;
            if counts.len() != thetas.len() {
                return Err(d.invalid("CoverageSnapshots v1 lengths"));
            }
            if counts.windows(2).any(|w| w[0].len() != w[1].len()) {
                return Err(d.invalid("CoverageSnapshots v1 row length"));
            }
            for (theta, dense) in thetas.into_iter().zip(counts) {
                out.push(theta, &dense);
            }
            return Ok(out);
        }
        out.rebuild_derived();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganc_dataset::{DatasetBuilder, RatingScale};

    fn train() -> Interactions {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        for u in 0..3u32 {
            b.push(UserId(u), ItemId(0), 4.0).unwrap();
        }
        b.push(UserId(0), ItemId(1), 4.0).unwrap();
        let d = b.build().unwrap();
        // Widen the item space so item 2 exists but is unrated.
        Interactions::from_ratings(d.n_users(), 3, d.ratings())
    }

    #[test]
    fn static_scores_decrease_with_popularity() {
        let c = StatCoverage::fit(&train());
        assert!(c.score(ItemId(1)) > c.score(ItemId(0)));
        assert!(c.score(ItemId(2)) == 1.0, "unrated item scores 1");
        assert!((c.score(ItemId(0)) - 0.5).abs() < 1e-12); // 1/√4
    }

    #[test]
    fn static_set_count_matches_full_rebuild() {
        let mut pops = train().item_popularity();
        let mut c = StatCoverage::from_popularity(&pops);
        pops[1] += 5;
        c.set_count(ItemId(1), pops[1]);
        assert_eq!(c, StatCoverage::from_popularity(&pops));
    }

    #[test]
    fn dynamic_starts_at_one_and_decays() {
        let mut c = DynCoverage::new(3);
        assert_eq!(c.score(ItemId(0)), 1.0);
        c.observe(&[ItemId(0), ItemId(0), ItemId(0)]);
        assert!((c.score(ItemId(0)) - 0.5).abs() < 1e-12);
        assert_eq!(c.score(ItemId(1)), 1.0);
    }

    #[test]
    fn dynamic_marginal_gains_diminish() {
        // The submodularity driver: each additional recommendation of the
        // same item strictly lowers its next score.
        let mut c = DynCoverage::new(1);
        let mut last = f64::INFINITY;
        for _ in 0..10 {
            let s = c.score(ItemId(0));
            assert!(s < last);
            last = s;
            c.observe(&[ItemId(0)]);
        }
    }

    #[test]
    fn dynamic_cached_scores_match_formula() {
        let mut c = DynCoverage::new(4);
        c.observe(&[ItemId(2), ItemId(2), ItemId(0)]);
        for i in 0..4u32 {
            let f = c.frequency(ItemId(i));
            assert_eq!(c.score(ItemId(i)), 1.0 / ((f as f64) + 1.0).sqrt());
        }
        assert_eq!(c.scores()[2], c.score(ItemId(2)));
    }

    #[test]
    fn snapshot_round_trips() {
        let mut c = DynCoverage::new(3);
        c.observe(&[ItemId(1), ItemId(2), ItemId(1)]);
        let snap = c.snapshot();
        let resumed = DynCoverage::from_snapshot(&snap);
        assert_eq!(resumed.frequency(ItemId(1)), 2);
        assert_eq!(resumed.score(ItemId(1)), c.score(ItemId(1)));
        assert_eq!(resumed, c);
    }

    #[test]
    fn random_coverage_is_deterministic_and_user_specific() {
        let c = RandCoverage::new(9);
        let mut a = vec![0.0; 8];
        let mut b = vec![0.0; 8];
        c.scores_for(UserId(0), &mut a);
        c.scores_for(UserId(0), &mut b);
        assert_eq!(a, b);
        c.scores_for(UserId(1), &mut b);
        assert_ne!(a, b);
        assert!(a.iter().all(|&x| (0.0..1.0).contains(&x)));
        let view = c.view_for(UserId(0));
        let mut cursor = view.scorer();
        for (i, &dense) in a.iter().enumerate() {
            assert_eq!(cursor.score(i as u32), dense);
            assert_eq!(view.score_at(i as u32), dense);
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(CoverageKind::Random.label(), "Rand");
        assert_eq!(CoverageKind::Static.label(), "Stat");
        assert_eq!(CoverageKind::Dynamic.label(), "Dyn");
    }

    #[test]
    fn snapshots_nearest_picks_closest_theta() {
        let mut s = CoverageSnapshots::new();
        for (t, item) in [(0.1, 0u32), (0.4, 1), (0.9, 2)] {
            let mut c = DynCoverage::new(3);
            c.observe(&[ItemId(item)]);
            s.push(t, &c.snapshot());
        }
        assert_eq!(s.nearest_idx(0.0), 0);
        assert_eq!(s.nearest_idx(0.3), 1);
        assert_eq!(s.nearest_idx(0.2), 0); // closer to 0.1
        assert_eq!(s.nearest_idx(0.95), 2);
        assert_eq!(s.nearest_idx(0.65), 1);
        // Exact tie 0.25 between 0.1 and 0.4 prefers the lower θ.
        assert_eq!(s.nearest_idx(0.25), 0);
        assert_eq!(s.counts_near(0.95), &[0, 0, 1]);
    }

    #[test]
    fn snapshots_sort_restores_theta_order() {
        let mut s = CoverageSnapshots::new();
        s.push(0.8, &[8]);
        s.push(0.2, &[2]);
        s.push(0.5, &[5]);
        s.sort_by_theta();
        assert_eq!(s.thetas(), &[0.2, 0.5, 0.8]);
        assert_eq!(s.counts_near(0.19), &[2]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn snapshots_scores_match_dyn_formula() {
        let mut s = CoverageSnapshots::new();
        s.push(0.5, &[0, 3, 8]);
        let mut buf = vec![0.0; 3];
        s.scores_near(0.5, &mut buf);
        assert_eq!(buf, vec![1.0, 0.5, 1.0 / 3.0]);
    }

    #[test]
    fn push_assigned_equals_dense_push() {
        let mut dense = CoverageSnapshots::new();
        let mut sparse = CoverageSnapshots::for_items(5);
        let mut cov = DynCoverage::new(5);
        let lists: Vec<Vec<ItemId>> = vec![
            vec![ItemId(0), ItemId(2)],
            vec![ItemId(2), ItemId(4)],
            vec![ItemId(1), ItemId(2)],
        ];
        for (k, list) in lists.iter().enumerate() {
            cov.observe(list);
            let t = 0.1 + 0.3 * k as f64;
            dense.push(t, &cov.snapshot());
            sparse.push_assigned(t, list);
        }
        for (k, t) in [(0usize, 0.1f64), (1, 0.4), (2, 0.7)] {
            assert_eq!(dense.counts_at(k), sparse.counts_at(k));
            let mut a = vec![0.0; 5];
            let mut b = vec![0.0; 5];
            dense.scores_near(t, &mut a);
            sparse.scores_near(t, &mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn view_matches_dense_scores_across_checkpoints() {
        // Enough pushes to cross several checkpoint boundaries.
        let n_items = 17u32;
        let mut s = CoverageSnapshots::for_items(n_items);
        let mut cov = DynCoverage::new(n_items);
        let total = 3 * CHECKPOINT_EVERY + 5;
        for k in 0..total {
            let list = [
                ItemId((k as u32 * 7) % n_items),
                ItemId((k as u32 * 5 + 3) % n_items),
            ];
            cov.observe(&list);
            s.push_assigned(k as f64 / total as f64, &list);
        }
        let mut dense = vec![0.0; n_items as usize];
        for q in 0..=20 {
            let t = q as f64 / 20.0;
            s.scores_near(t, &mut dense);
            let view = s.view_near(t);
            let mut cursor = view.scorer();
            for i in 0..n_items {
                assert_eq!(view.score_at(i), dense[i as usize], "t={t} item {i}");
                assert_eq!(cursor.score(i), dense[i as usize], "t={t} item {i}");
            }
        }
    }

    #[test]
    fn delta_wire_round_trips_and_shrinks() {
        let n_items = 200u32;
        let mut s = CoverageSnapshots::for_items(n_items);
        let mut cov = DynCoverage::new(n_items);
        for k in 0..100u32 {
            let list = [ItemId(k % n_items), ItemId((k * 13 + 1) % n_items)];
            cov.observe(&list);
            s.push_assigned(k as f64 / 100.0, &list);
        }
        let bytes = bincode::serialize(&s).unwrap();
        let restored: CoverageSnapshots = bincode::deserialize(&bytes).unwrap();
        assert_eq!(restored, s);
        // Dense layout would hold 100 × 200 u32 counts alone.
        let dense_floor = 100 * 200 * 4;
        assert!(
            bytes.len() * 5 < dense_floor,
            "{} bytes is not ≥5× below the {} dense floor",
            bytes.len(),
            dense_floor
        );
    }

    #[test]
    fn corrupt_wire_is_an_error_not_a_panic() {
        // v2 payload whose delta references an item outside the catalog.
        let mut p = bincode::serialize(&u64::MAX).unwrap();
        p.extend(bincode::serialize(&3u64).unwrap()); // n_items
        p.extend(bincode::serialize(&vec![0.5f64]).unwrap()); // thetas
        p.extend(bincode::serialize(&vec![0u32]).unwrap()); // chain
        p.extend(bincode::serialize(&1u64).unwrap()); // 1 delta
        p.extend(bincode::serialize(&1u64).unwrap()); // of 1 entry
        p.extend(bincode::serialize(&999u32).unwrap()); // item 999 ≥ 3
        p.extend(bincode::serialize(&1i64).unwrap());
        assert!(bincode::deserialize::<CoverageSnapshots>(&p).is_err());

        // v2 payload whose chain points past the delta list.
        let mut p = bincode::serialize(&u64::MAX).unwrap();
        p.extend(bincode::serialize(&3u64).unwrap());
        p.extend(bincode::serialize(&vec![0.5f64]).unwrap());
        p.extend(bincode::serialize(&vec![7u32]).unwrap()); // chain idx 7 ≥ 1
        p.extend(bincode::serialize(&1u64).unwrap());
        p.extend(bincode::serialize(&1u64).unwrap());
        p.extend(bincode::serialize(&0u32).unwrap());
        p.extend(bincode::serialize(&1i64).unwrap());
        assert!(bincode::deserialize::<CoverageSnapshots>(&p).is_err());

        // v1 payload with ragged dense rows.
        let thetas: Vec<f64> = vec![0.1, 0.2];
        let counts: Vec<Box<[u32]>> =
            vec![vec![1, 2].into_boxed_slice(), vec![1].into_boxed_slice()];
        let mut p = bincode::serialize(&thetas).unwrap();
        p.extend(bincode::serialize(&counts).unwrap());
        assert!(bincode::deserialize::<CoverageSnapshots>(&p).is_err());
    }

    #[test]
    fn legacy_dense_wire_is_readable() {
        // Build the v1 payload by hand: thetas then dense counts.
        let mut s = CoverageSnapshots::new();
        s.push(0.2, &[1, 0, 3]);
        s.push(0.7, &[1, 2, 3]);
        let thetas: Vec<f64> = vec![0.2, 0.7];
        let counts: Vec<Box<[u32]>> = vec![
            vec![1, 0, 3].into_boxed_slice(),
            vec![1, 2, 3].into_boxed_slice(),
        ];
        let mut v1 = bincode::serialize(&thetas).unwrap();
        v1.extend(bincode::serialize(&counts).unwrap());
        let restored: CoverageSnapshots = bincode::deserialize(&v1).unwrap();
        assert_eq!(restored.thetas(), s.thetas());
        assert_eq!(restored.counts_near(0.2), s.counts_near(0.2));
        assert_eq!(restored.counts_near(0.7), s.counts_near(0.7));
    }

    /// A chain long enough to cross several dense-checkpoint boundaries,
    /// with enough θ spread to cut bands anywhere.
    fn chain_fixture(n_items: u32, steps: usize) -> CoverageSnapshots {
        let mut s = CoverageSnapshots::for_items(n_items);
        let mut cov = DynCoverage::new(n_items);
        for k in 0..steps {
            let list = [
                ItemId((k as u32 * 7) % n_items),
                ItemId((k as u32 * 11 + 3) % n_items),
            ];
            cov.observe(&list);
            s.push_assigned(k as f64 / steps as f64, &list);
        }
        s
    }

    /// Every θ in `[lo, hi)` must resolve to bit-identical scores through
    /// the sliced store and the full store.
    fn assert_band_equivalent(full: &CoverageSnapshots, lo: f64, hi: f64) {
        let slice = full.slice_band(lo, hi);
        assert!(!slice.is_empty(), "a band slice always keeps ≥1 snapshot");
        assert_eq!(slice.n_items(), full.n_items());
        let n_items = full.n_items();
        let mut a = vec![0.0; n_items];
        let mut b = vec![0.0; n_items];
        let (plo, phi) = (lo.max(-0.25), hi.min(1.25));
        for q in 0..=64 {
            let t = plo + (phi - plo) * q as f64 / 64.0;
            if t >= hi {
                continue;
            }
            assert_eq!(
                full.counts_near(t),
                slice.counts_near(t),
                "counts diverge at θ={t} for band [{lo}, {hi})"
            );
            full.scores_near(t, &mut a);
            slice.scores_near(t, &mut b);
            assert_eq!(a, b, "scores diverge at θ={t} for band [{lo}, {hi})");
        }
    }

    #[test]
    fn extract_empty_range_yields_empty_store() {
        let full = chain_fixture(13, 10);
        let empty = full.extract_range(4..4);
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
        assert_eq!(empty.n_items(), full.n_items(), "catalog size survives");
    }

    #[test]
    fn empty_band_between_duplicate_cuts_still_serves() {
        // An empty user band (two identical cut values) still produces a
        // valid single-snapshot slice: band_range always keeps the boundary
        // snapshot both neighbors share, and resolving the cut θ through
        // the slice must match the full store exactly.
        let full = chain_fixture(13, 20);
        let cut = full.thetas()[7];
        let slice = full.slice_band(cut, cut);
        assert_eq!(slice.len(), 1, "degenerate band keeps exactly one");
        assert_eq!(slice.n_items(), full.n_items());
        // A single-snapshot slice resolves every θ to its one snapshot,
        // which must be the one the full store resolves the cut θ to.
        let mut a = vec![0.0; full.n_items()];
        let mut b = vec![0.0; full.n_items()];
        for probe in [cut, f64::NEG_INFINITY, f64::INFINITY] {
            assert_eq!(slice.counts_near(probe), full.counts_near(cut));
            slice.scores_near(probe, &mut a);
            full.scores_near(cut, &mut b);
            assert_eq!(a, b, "probe {probe} diverges");
        }
    }

    #[test]
    fn band_spanning_checkpoint_boundary_is_exact() {
        // CHECKPOINT_EVERY = 16: bands straddling chain steps 15|16 and
        // 31|32 force reconstruction across checkpoint segments.
        let full = chain_fixture(17, 3 * CHECKPOINT_EVERY + 5);
        let th = full.thetas();
        for (a, b) in [
            (CHECKPOINT_EVERY - 3, CHECKPOINT_EVERY + 3),
            (2 * CHECKPOINT_EVERY - 1, 2 * CHECKPOINT_EVERY + 1),
            (1, 3 * CHECKPOINT_EVERY + 2),
        ] {
            assert_band_equivalent(&full, th[a], th[b]);
        }
    }

    #[test]
    fn single_snapshot_band_is_exact() {
        let full = chain_fixture(13, 40);
        // A band tight enough that only one snapshot is nearest-reachable.
        let th = full.thetas();
        let mid = (th[20] + th[21]) / 2.0;
        let slice = full.slice_band(th[20], mid.min(th[21]));
        assert!(slice.len() <= 2);
        assert_band_equivalent(&full, th[20], (th[20] + th[21]) / 2.0);
        // Whole-store band and open-ended bands stay exact too.
        assert_band_equivalent(&full, f64::NEG_INFINITY, 0.3);
        assert_band_equivalent(&full, 0.7, f64::INFINITY);
        assert_band_equivalent(&full, f64::NEG_INFINITY, f64::INFINITY);
    }

    #[test]
    fn theta_duplicates_on_a_band_cut_resolve_identically() {
        // Several snapshots share the exact θ value a band is cut at; both
        // sides must keep the copies their queries can resolve to, and the
        // lower-θ tie rule must pick the same snapshot through the slice.
        let n_items = 11u32;
        let mut full = CoverageSnapshots::for_items(n_items);
        let mut cov = DynCoverage::new(n_items);
        let thetas = [0.1, 0.3, 0.5, 0.5, 0.5, 0.7, 0.9];
        for (k, &t) in thetas.iter().enumerate() {
            let list = [ItemId((k as u32 * 5 + 1) % n_items)];
            cov.observe(&list);
            full.push_assigned(t, &list);
        }
        let cut = 0.5;
        assert_band_equivalent(&full, f64::NEG_INFINITY, cut);
        assert_band_equivalent(&full, cut, f64::INFINITY);
        // The cut θ itself belongs to the upper band and must hit the
        // *first* duplicate (lower tie rule) through the slice as well.
        let upper = full.slice_band(cut, f64::INFINITY);
        assert_eq!(upper.counts_near(cut), full.counts_near(cut));
    }

    #[test]
    fn band_slices_round_trip_the_wire() {
        let full = chain_fixture(19, 50);
        let slice = full.slice_band(0.2, 0.6);
        let bytes = bincode::serialize(&slice).unwrap();
        let restored: CoverageSnapshots = bincode::deserialize(&bytes).unwrap();
        assert_eq!(restored, slice);
    }

    #[test]
    fn scores_into_matches_pointwise() {
        let mut c = DynCoverage::new(4);
        c.observe(&[ItemId(2)]);
        let mut buf = vec![0.0; 4];
        c.scores_into(&mut buf);
        for (i, &s) in buf.iter().enumerate() {
            assert_eq!(s, c.score(ItemId(i as u32)));
        }
    }
}
