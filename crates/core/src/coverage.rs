//! Coverage recommenders (§III-B): the `c(i)` component of the GANC value
//! function. All scores lie in `(0, 1]` so they share a scale with the
//! accuracy component.

use ganc_dataset::{Interactions, ItemId, UserId};
use ganc_recommender::random::unit_hash;

/// Which coverage recommender a GANC variant uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CoverageKind {
    /// `c(i) ~ unif(0,1)` — maximal-coverage control (Rand).
    Random,
    /// `c(i) = 1/√(f_i^R + 1)` — static inverse train-popularity (Stat).
    Static,
    /// `c(i) = 1/√(f_i^A + 1)` over the recommendations already assigned —
    /// diminishing returns (Dyn).
    Dynamic,
}

impl CoverageKind {
    /// Display label matching the paper (`Rand` / `Stat` / `Dyn`).
    pub fn label(&self) -> &'static str {
        match self {
            CoverageKind::Random => "Rand",
            CoverageKind::Static => "Stat",
            CoverageKind::Dynamic => "Dyn",
        }
    }
}

/// Random coverage: a deterministic per-`(seed, user, item)` uniform score.
/// The paper redraws per run; vary the seed across runs to reproduce that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RandCoverage {
    seed: u64,
}

impl RandCoverage {
    /// Create with a run seed.
    pub fn new(seed: u64) -> RandCoverage {
        RandCoverage { seed }
    }

    /// Fill the coverage score buffer for one user.
    pub fn scores_for(&self, user: UserId, out: &mut [f64]) {
        for (i, o) in out.iter_mut().enumerate() {
            *o = unit_hash(self.seed, user.0, i as u32);
        }
    }
}

/// Static coverage: monotone decreasing in train popularity,
/// `c(i) = 1/√(f_i^R + 1)` (§III-B). The gain of recommending an item is
/// constant — the paper shows this focuses on a small subset of tail items
/// and is the weakest coverage recommender.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StatCoverage {
    scores: Vec<f64>,
}

impl StatCoverage {
    /// Precompute from the train set.
    pub fn fit(train: &Interactions) -> StatCoverage {
        StatCoverage::from_popularity(&train.item_popularity())
    }

    /// Rebuild from a raw popularity vector `f^R` (one count per item).
    /// The serving path uses this to refresh coverage after ingesting new
    /// interactions without re-walking the train set.
    pub fn from_popularity(popularity: &[u32]) -> StatCoverage {
        let scores = popularity
            .iter()
            .map(|&f| 1.0 / ((f as f64) + 1.0).sqrt())
            .collect();
        StatCoverage { scores }
    }

    /// The static score of one item.
    #[inline]
    pub fn score(&self, item: ItemId) -> f64 {
        self.scores[item.idx()]
    }

    /// All scores, indexed by item id.
    #[inline]
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }
}

/// Dynamic coverage: `c(i) = 1/√(f_i^A + 1)` where `f^A` counts how often
/// `i` appears in the recommendations assigned **so far** (§III-B).
///
/// Recommending an item has diminishing returns — `c(i) = 1` while the item
/// is unrecommended and decays as it spreads — which makes the aggregate
/// objective submodular (Appendix B) and drives the coverage gains of
/// GANC(·,·,Dyn).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DynCoverage {
    counts: Vec<u32>,
}

impl DynCoverage {
    /// Start with an empty assignment (`f^A = 0`, every score 1).
    pub fn new(n_items: u32) -> DynCoverage {
        DynCoverage {
            counts: vec![0; n_items as usize],
        }
    }

    /// Resume from a stored assignment-frequency snapshot (OSLG's `F(θ_s)`).
    pub fn from_snapshot(counts: &[u32]) -> DynCoverage {
        DynCoverage {
            counts: counts.to_vec(),
        }
    }

    /// Current score of one item.
    #[inline]
    pub fn score(&self, item: ItemId) -> f64 {
        1.0 / ((self.counts[item.idx()] as f64) + 1.0).sqrt()
    }

    /// Fill a score buffer for the current state.
    pub fn scores_into(&self, out: &mut [f64]) {
        for (c, o) in self.counts.iter().zip(out.iter_mut()) {
            *o = 1.0 / ((*c as f64) + 1.0).sqrt();
        }
    }

    /// Record an assigned top-N set (Algorithm 1, line 7).
    pub fn observe(&mut self, assigned: &[ItemId]) {
        for item in assigned {
            self.counts[item.idx()] += 1;
        }
    }

    /// Snapshot the assignment frequencies (Algorithm 1, line 8 stores
    /// `F(θ_u) ← f`).
    pub fn snapshot(&self) -> Box<[u32]> {
        self.counts.clone().into_boxed_slice()
    }

    /// Current assignment frequency of an item (`f_i^A`).
    #[inline]
    pub fn frequency(&self, item: ItemId) -> u32 {
        self.counts[item.idx()]
    }
}

/// The assignment-frequency snapshots OSLG's sequential phase produces —
/// `F(θ_s)` for each sampled user `s` (Algorithm 1, line 8), kept sorted by
/// θ so any user can be served from the snapshot of the nearest sampled θ
/// (lines 11–15).
///
/// This is the shared coverage state an online query path scores against:
/// it is immutable after the sequential phase, so any number of concurrent
/// single-user queries can read it without coordination.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CoverageSnapshots {
    thetas: Vec<f64>,
    counts: Vec<Box<[u32]>>,
}

impl CoverageSnapshots {
    /// An empty snapshot store (no sampled users yet).
    pub fn new() -> CoverageSnapshots {
        CoverageSnapshots {
            thetas: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Append one `(θ_s, F(θ_s))` pair. Callers must push in increasing θ
    /// (the OSLG ordering produces this for free); [`CoverageSnapshots::sort_by_theta`]
    /// restores the invariant for arbitrary-order ablations.
    pub fn push(&mut self, theta: f64, snapshot: Box<[u32]>) {
        self.thetas.push(theta);
        self.counts.push(snapshot);
    }

    /// Number of stored snapshots.
    pub fn len(&self) -> usize {
        self.thetas.len()
    }

    /// Whether no snapshots are stored.
    pub fn is_empty(&self) -> bool {
        self.thetas.is_empty()
    }

    /// Re-sort the store by θ (stable), for snapshots pushed out of order.
    pub fn sort_by_theta(&mut self) {
        let mut order: Vec<usize> = (0..self.thetas.len()).collect();
        order.sort_by(|&a, &b| {
            self.thetas[a]
                .partial_cmp(&self.thetas[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        self.thetas = order.iter().map(|&k| self.thetas[k]).collect();
        self.counts = order.iter().map(|&k| self.counts[k].clone()).collect();
    }

    /// Index of the snapshot whose θ is nearest to `t`. Ties prefer the
    /// lower θ — the earlier, less tail-discounted snapshot.
    ///
    /// # Panics
    /// If the store is empty.
    pub fn nearest_idx(&self, t: f64) -> usize {
        let thetas = &self.thetas;
        assert!(!thetas.is_empty(), "no snapshots stored");
        let pos = thetas.partition_point(|&s| s < t);
        if pos == 0 {
            return 0;
        }
        if pos >= thetas.len() {
            return thetas.len() - 1;
        }
        let below = pos - 1;
        if (t - thetas[below]) <= (thetas[pos] - t) {
            below
        } else {
            pos
        }
    }

    /// The raw assignment frequencies of the snapshot nearest to `t`.
    pub fn nearest_counts(&self, t: f64) -> &[u32] {
        &self.counts[self.nearest_idx(t)]
    }

    /// Fill `out` with coverage scores `1/√(f+1)` from the snapshot nearest
    /// to `t`.
    pub fn scores_near(&self, t: f64, out: &mut [f64]) {
        for (&f, o) in self.nearest_counts(t).iter().zip(out.iter_mut()) {
            *o = 1.0 / ((f as f64) + 1.0).sqrt();
        }
    }

    /// The stored θ values, ascending.
    pub fn thetas(&self) -> &[f64] {
        &self.thetas
    }
}

impl Default for CoverageSnapshots {
    fn default() -> CoverageSnapshots {
        CoverageSnapshots::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganc_dataset::{DatasetBuilder, RatingScale};

    fn train() -> Interactions {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        for u in 0..3u32 {
            b.push(UserId(u), ItemId(0), 4.0).unwrap();
        }
        b.push(UserId(0), ItemId(1), 4.0).unwrap();
        let d = b.build().unwrap();
        // Widen the item space so item 2 exists but is unrated.
        Interactions::from_ratings(d.n_users(), 3, d.ratings())
    }

    #[test]
    fn static_scores_decrease_with_popularity() {
        let c = StatCoverage::fit(&train());
        assert!(c.score(ItemId(1)) > c.score(ItemId(0)));
        assert!(c.score(ItemId(2)) == 1.0, "unrated item scores 1");
        assert!((c.score(ItemId(0)) - 0.5).abs() < 1e-12); // 1/√4
    }

    #[test]
    fn dynamic_starts_at_one_and_decays() {
        let mut c = DynCoverage::new(3);
        assert_eq!(c.score(ItemId(0)), 1.0);
        c.observe(&[ItemId(0), ItemId(0), ItemId(0)]);
        assert!((c.score(ItemId(0)) - 0.5).abs() < 1e-12);
        assert_eq!(c.score(ItemId(1)), 1.0);
    }

    #[test]
    fn dynamic_marginal_gains_diminish() {
        // The submodularity driver: each additional recommendation of the
        // same item strictly lowers its next score.
        let mut c = DynCoverage::new(1);
        let mut last = f64::INFINITY;
        for _ in 0..10 {
            let s = c.score(ItemId(0));
            assert!(s < last);
            last = s;
            c.observe(&[ItemId(0)]);
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let mut c = DynCoverage::new(3);
        c.observe(&[ItemId(1), ItemId(2), ItemId(1)]);
        let snap = c.snapshot();
        let resumed = DynCoverage::from_snapshot(&snap);
        assert_eq!(resumed.frequency(ItemId(1)), 2);
        assert_eq!(resumed.score(ItemId(1)), c.score(ItemId(1)));
    }

    #[test]
    fn random_coverage_is_deterministic_and_user_specific() {
        let c = RandCoverage::new(9);
        let mut a = vec![0.0; 8];
        let mut b = vec![0.0; 8];
        c.scores_for(UserId(0), &mut a);
        c.scores_for(UserId(0), &mut b);
        assert_eq!(a, b);
        c.scores_for(UserId(1), &mut b);
        assert_ne!(a, b);
        assert!(a.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(CoverageKind::Random.label(), "Rand");
        assert_eq!(CoverageKind::Static.label(), "Stat");
        assert_eq!(CoverageKind::Dynamic.label(), "Dyn");
    }

    #[test]
    fn snapshots_nearest_picks_closest_theta() {
        let mut s = CoverageSnapshots::new();
        for (t, item) in [(0.1, 0u32), (0.4, 1), (0.9, 2)] {
            let mut c = DynCoverage::new(3);
            c.observe(&[ItemId(item)]);
            s.push(t, c.snapshot());
        }
        assert_eq!(s.nearest_idx(0.0), 0);
        assert_eq!(s.nearest_idx(0.3), 1);
        assert_eq!(s.nearest_idx(0.2), 0); // closer to 0.1
        assert_eq!(s.nearest_idx(0.95), 2);
        assert_eq!(s.nearest_idx(0.65), 1);
        // Exact tie 0.25 between 0.1 and 0.4 prefers the lower θ.
        assert_eq!(s.nearest_idx(0.25), 0);
        assert_eq!(s.nearest_counts(0.95), &[0, 0, 1]);
    }

    #[test]
    fn snapshots_sort_restores_theta_order() {
        let mut s = CoverageSnapshots::new();
        s.push(0.8, vec![8].into_boxed_slice());
        s.push(0.2, vec![2].into_boxed_slice());
        s.push(0.5, vec![5].into_boxed_slice());
        s.sort_by_theta();
        assert_eq!(s.thetas(), &[0.2, 0.5, 0.8]);
        assert_eq!(s.nearest_counts(0.19), &[2]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn snapshots_scores_match_dyn_formula() {
        let mut s = CoverageSnapshots::new();
        s.push(0.5, vec![0, 3, 8].into_boxed_slice());
        let mut buf = vec![0.0; 3];
        s.scores_near(0.5, &mut buf);
        assert_eq!(buf, vec![1.0, 0.5, 1.0 / 3.0]);
    }

    #[test]
    fn scores_into_matches_pointwise() {
        let mut c = DynCoverage::new(4);
        c.observe(&[ItemId(2)]);
        let mut buf = vec![0.0; 4];
        c.scores_into(&mut buf);
        for (i, &s) in buf.iter().enumerate() {
            assert_eq!(s, c.score(ItemId(i as u32)));
        }
    }
}
