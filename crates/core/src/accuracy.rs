//! Accuracy-score adapters (§III-A): turn any base [`Recommender`] into
//! per-user accuracy scores `a(i) ∈ [0, 1]`.
//!
//! * Score/rating models (RSVD, PSVD, RankMF) use [`NormalizedScores`]:
//!   per-user min–max normalization of the raw score vector, matching the
//!   paper's "normalize the predicted rating vectors of all users".
//! * Pop "does not score items", so the paper defines a binary indicator:
//!   `a(i) = 1` iff `i` is in Pop's own top-N set — [`TopNIndicator`].

use ganc_dataset::{Interactions, UserId};
use ganc_recommender::topn::{select_top_n, train_item_mask, unseen_train_candidates};
use ganc_recommender::Recommender;

/// How a base recommender is adapted to `[0, 1]` accuracy scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AccuracyMode {
    /// Per-user min–max normalization of raw scores.
    Normalized,
    /// Binary membership in the base model's own top-N list (the paper's
    /// Pop adapter).
    TopNIndicator,
}

/// A source of per-user accuracy scores in `[0, 1]`.
pub trait AccuracyScorer: Send + Sync {
    /// Name for experiment tables (delegates to the base model).
    fn name(&self) -> String;

    /// Fill `out[i] = a(i) ∈ [0, 1]` for every item.
    fn accuracy_scores(&self, user: UserId, out: &mut [f64]);
}

/// Min–max normalized scores of a base recommender.
pub struct NormalizedScores<'a> {
    base: &'a dyn Recommender,
}

impl<'a> NormalizedScores<'a> {
    /// Wrap a base recommender.
    pub fn new(base: &'a dyn Recommender) -> NormalizedScores<'a> {
        NormalizedScores { base }
    }
}

impl AccuracyScorer for NormalizedScores<'_> {
    fn name(&self) -> String {
        self.base.name()
    }

    fn accuracy_scores(&self, user: UserId, out: &mut [f64]) {
        self.base.score_items(user, out);
        ganc_dataset::stats::min_max_normalize(out);
    }
}

/// Binary top-N membership scores: `a(i) = 1` iff the base model itself
/// would put `i` in the user's top-N (unseen train items only).
pub struct TopNIndicator<'a> {
    base: &'a dyn Recommender,
    train: &'a Interactions,
    in_train: std::borrow::Cow<'a, [bool]>,
    n: usize,
}

impl<'a> TopNIndicator<'a> {
    /// Wrap a base recommender with the list size `n` used for membership.
    pub fn new(base: &'a dyn Recommender, train: &'a Interactions, n: usize) -> TopNIndicator<'a> {
        TopNIndicator {
            base,
            train,
            in_train: std::borrow::Cow::Owned(train_item_mask(train)),
            n,
        }
    }

    /// Like [`TopNIndicator::new`], borrowing an already-computed item mask
    /// (from [`ganc_recommender::topn::train_item_mask`]) instead of
    /// rebuilding it — the serving path constructs one adapter per request
    /// and must not re-walk the train set each time.
    pub fn with_mask(
        base: &'a dyn Recommender,
        train: &'a Interactions,
        in_train: &'a [bool],
        n: usize,
    ) -> TopNIndicator<'a> {
        TopNIndicator {
            base,
            train,
            in_train: std::borrow::Cow::Borrowed(in_train),
            n,
        }
    }
}

impl AccuracyScorer for TopNIndicator<'_> {
    fn name(&self) -> String {
        self.base.name()
    }

    fn accuracy_scores(&self, user: UserId, out: &mut [f64]) {
        self.base.score_items(user, out);
        let top = select_top_n(
            out,
            unseen_train_candidates(self.train, self.in_train.as_ref(), user),
            self.n,
        );
        out.iter_mut().for_each(|o| *o = 0.0);
        for item in top {
            out[item.idx()] = 1.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ganc_dataset::{DatasetBuilder, ItemId, RatingScale};
    use ganc_recommender::pop::MostPopular;

    struct Linear;
    impl Recommender for Linear {
        fn name(&self) -> String {
            "linear".into()
        }
        fn score_items(&self, _u: UserId, out: &mut [f64]) {
            for (k, o) in out.iter_mut().enumerate() {
                *o = 10.0 + 5.0 * k as f64;
            }
        }
    }

    fn train() -> Interactions {
        let mut b = DatasetBuilder::new("t", RatingScale::stars_1_5());
        for u in 0..4u32 {
            b.push(UserId(u), ItemId(0), 4.0).unwrap();
        }
        for u in 0..2u32 {
            b.push(UserId(u), ItemId(1), 4.0).unwrap();
        }
        b.push(UserId(0), ItemId(2), 4.0).unwrap();
        b.push(UserId(0), ItemId(3), 4.0).unwrap();
        b.build().unwrap().interactions()
    }

    #[test]
    fn normalized_scores_span_unit_interval() {
        let rec = Linear;
        let adapter = NormalizedScores::new(&rec);
        let mut buf = vec![0.0; 4];
        adapter.accuracy_scores(UserId(0), &mut buf);
        assert_eq!(buf, vec![0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0]);
    }

    #[test]
    fn indicator_marks_exactly_top_n_unseen() {
        let m = train();
        let pop = MostPopular::fit(&m);
        let adapter = TopNIndicator::new(&pop, &m, 2);
        let mut buf = vec![0.0; 4];
        // user 3 has seen only item 0 → Pop's top-2 unseen = {1, 2}.
        adapter.accuracy_scores(UserId(3), &mut buf);
        assert_eq!(buf, vec![0.0, 1.0, 1.0, 0.0]);
        assert_eq!(buf.iter().filter(|&&x| x == 1.0).count(), 2);
    }

    #[test]
    fn indicator_excludes_seen_items() {
        let m = train();
        let pop = MostPopular::fit(&m);
        let adapter = TopNIndicator::new(&pop, &m, 4);
        let mut buf = vec![0.0; 4];
        adapter.accuracy_scores(UserId(0), &mut buf);
        // user 0 saw everything → no indicator set.
        assert!(buf.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn adapters_report_base_name() {
        let rec = Linear;
        assert_eq!(NormalizedScores::new(&rec).name(), "linear");
        let m = train();
        let pop = MostPopular::fit(&m);
        assert_eq!(TopNIndicator::new(&pop, &m, 3).name(), "Pop");
    }
}
