//! # ganc-core
//!
//! The paper's primary contribution: **GANC**, a Generic re-ranking
//! framework providing customized balance between Accuracy, Novelty and
//! Coverage (§III).
//!
//! GANC is assembled from three components, written
//! `GANC(ARec, θ, CRec)` in the paper:
//!
//! 1. an **accuracy recommender** — any [`ganc_recommender::Recommender`],
//!    adapted to `[0, 1]` accuracy scores by [`accuracy::AccuracyScorer`]
//!    (per-user normalization for score models, a top-N indicator for Pop);
//! 2. a per-user **long-tail preference** `θ_u ∈ [0, 1]` (estimated by
//!    `ganc-preference`);
//! 3. a **coverage recommender** ([`coverage`]): `Rand`, `Stat`, or the
//!    diminishing-returns `Dyn`.
//!
//! Each user's value function is
//! `v_u(P_u) = (1 − θ_u)·a(P_u) + θ_u·c(P_u)` (Eq. III.1), and the
//! framework maximizes `Σ_u v_u(P_u)` (Eq. III.2). With `Dyn` the objective
//! is submodular and monotone over user-item pairs (Appendix B), and is
//! optimized by [`oslg`] — Ordered Sampling-based Locally Greedy
//! (Algorithm 1) — or by the full Locally Greedy for reference.

pub mod accuracy;
pub mod coverage;
pub mod ganc;
pub mod oslg;
pub mod query;

pub use accuracy::{AccuracyMode, AccuracyScorer, NormalizedScores, TopNIndicator};
pub use coverage::{
    CoverageKind, CoverageSnapshots, CoverageView, DynCoverage, RandCoverage, StatCoverage,
};
pub use ganc::{GancBuilder, TopNLists};
pub use oslg::{oslg_seed_phase, OslgConfig, OslgSeed, UserOrdering};
pub use query::{fused_select, CoverageProvider, RequestOptions, RerankMode, UserQuery};
