//! The per-request GANC query path: compute **one** user's top-N against
//! shared, read-only coverage state, without running the batch optimizer.
//!
//! The paper's value function `v_u(P_u) = (1−θ_u)·a(P_u) + θ_u·c(P_u)`
//! (Eq. III.1) is separable per user once the coverage term is fixed, and
//! OSLG's own parallel phase (Algorithm 1, lines 11–15) already serves
//! every non-sampled user independently from the frequency snapshot of the
//! nearest sampled θ. [`UserQuery`] extracts exactly that computation as a
//! reusable API so an online serving path can answer single requests — the
//! batch paths in [`crate::oslg`] and [`crate::ganc`] are built on it, which
//! makes "single-user query equals batch output" true by construction.

use crate::accuracy::AccuracyScorer;
use crate::coverage::{CoverageSnapshots, DynCoverage, RandCoverage, StatCoverage};
use ganc_dataset::{Interactions, ItemId, UserId};
use ganc_recommender::topn::{select_top_n, unseen_train_candidates};

/// Shared coverage state a single-user query scores against.
///
/// Implementations fill `out[i] = c(i) ∈ (0, 1]` for one request. They are
/// read-only by design: the same provider value can back any number of
/// concurrent queries.
pub trait CoverageProvider: Sync {
    /// Fill per-item coverage scores for a request by `user` with
    /// long-tail preference `theta_u`.
    fn coverage_into(&self, user: UserId, theta_u: f64, out: &mut [f64]);
}

impl CoverageProvider for StatCoverage {
    fn coverage_into(&self, _user: UserId, _theta_u: f64, out: &mut [f64]) {
        out.copy_from_slice(self.scores());
    }
}

impl CoverageProvider for RandCoverage {
    fn coverage_into(&self, user: UserId, _theta_u: f64, out: &mut [f64]) {
        self.scores_for(user, out);
    }
}

impl CoverageProvider for DynCoverage {
    fn coverage_into(&self, _user: UserId, _theta_u: f64, out: &mut [f64]) {
        self.scores_into(out);
    }
}

impl CoverageProvider for CoverageSnapshots {
    fn coverage_into(&self, _user: UserId, theta_u: f64, out: &mut [f64]) {
        self.scores_near(theta_u, out);
    }
}

/// Combined GANC score `(1−θ)a + θc` written into `out` (Eq. III.1).
#[inline]
pub fn combine_into(theta_u: f64, a: &[f64], c: &[f64], out: &mut [f64]) {
    let w_a = 1.0 - theta_u;
    for ((o, &av), &cv) in out.iter_mut().zip(a).zip(c) {
        *o = w_a * av + theta_u * cv;
    }
}

/// A reusable single-user top-N computation.
///
/// Owns the per-request score buffers, so a long-lived worker allocates
/// once and serves any number of requests. Not `Sync` (the buffers are
/// mutable state); create one per worker thread.
///
/// ```
/// use ganc_core::accuracy::NormalizedScores;
/// use ganc_core::coverage::StatCoverage;
/// use ganc_core::query::UserQuery;
/// use ganc_dataset::synth::DatasetProfile;
/// use ganc_dataset::UserId;
/// use ganc_recommender::pop::MostPopular;
/// use ganc_recommender::topn::train_item_mask;
///
/// let data = DatasetProfile::tiny().generate(3);
/// let split = data.split_per_user(0.5, 1).unwrap();
/// let pop = MostPopular::fit(&split.train);
/// let arec = NormalizedScores::new(&pop);
/// let stat = StatCoverage::fit(&split.train);
/// let in_train = train_item_mask(&split.train);
///
/// let mut q = UserQuery::new(&arec, &split.train, &in_train, 5);
/// let list = q.topn(UserId(0), 0.3, &stat);
/// assert_eq!(list.len(), 5);
/// ```
pub struct UserQuery<'a> {
    arec: &'a dyn AccuracyScorer,
    train: &'a Interactions,
    in_train: &'a [bool],
    n: usize,
    a_buf: Vec<f64>,
    c_buf: Vec<f64>,
    s_buf: Vec<f64>,
}

impl<'a> UserQuery<'a> {
    /// A query context over an accuracy scorer and the train set whose
    /// unseen items form the candidate pool. `in_train` is the item mask
    /// from [`ganc_recommender::topn::train_item_mask`] (passed in so many
    /// workers can share one).
    pub fn new(
        arec: &'a dyn AccuracyScorer,
        train: &'a Interactions,
        in_train: &'a [bool],
        n: usize,
    ) -> UserQuery<'a> {
        let n_items = train.n_items() as usize;
        assert_eq!(in_train.len(), n_items, "item mask must cover the catalog");
        UserQuery {
            arec,
            train,
            in_train,
            n,
            a_buf: vec![0.0; n_items],
            c_buf: vec![0.0; n_items],
            s_buf: vec![0.0; n_items],
        }
    }

    /// List size `N` this query produces.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The user's top-N under `v_u = (1−θ_u)·a + θ_u·c` against the given
    /// coverage state.
    pub fn topn(
        &mut self,
        user: UserId,
        theta_u: f64,
        coverage: &dyn CoverageProvider,
    ) -> Vec<ItemId> {
        self.topn_excluding(user, theta_u, coverage, &[])
    }

    /// Like [`UserQuery::topn`], additionally excluding `extra_seen`
    /// (sorted, deduplicated item ids) from the candidate pool — the hook
    /// for interactions ingested after the train snapshot was frozen.
    pub fn topn_excluding(
        &mut self,
        user: UserId,
        theta_u: f64,
        coverage: &dyn CoverageProvider,
        extra_seen: &[u32],
    ) -> Vec<ItemId> {
        debug_assert!(extra_seen.windows(2).all(|w| w[0] < w[1]));
        self.arec.accuracy_scores(user, &mut self.a_buf);
        coverage.coverage_into(user, theta_u, &mut self.c_buf);
        combine_into(theta_u, &self.a_buf, &self.c_buf, &mut self.s_buf);
        let candidates = unseen_train_candidates(self.train, self.in_train, user)
            .filter(|i| extra_seen.binary_search(i).is_err());
        select_top_n(&self.s_buf, candidates, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::NormalizedScores;
    use ganc_dataset::synth::DatasetProfile;
    use ganc_preference::GeneralizedConfig;
    use ganc_recommender::pop::MostPopular;
    use ganc_recommender::topn::train_item_mask;

    fn setup() -> (Interactions, Vec<f64>, MostPopular) {
        let data = DatasetProfile::small().generate(33);
        let split = data.split_per_user(0.5, 2).unwrap();
        let theta = GeneralizedConfig::default().estimate(&split.train);
        let pop = MostPopular::fit(&split.train);
        (split.train, theta, pop)
    }

    #[test]
    fn query_respects_topn_contract() {
        let (train, theta, pop) = setup();
        let arec = NormalizedScores::new(&pop);
        let in_train = train_item_mask(&train);
        let stat = StatCoverage::fit(&train);
        let mut q = UserQuery::new(&arec, &train, &in_train, 5);
        for u in 0..train.n_users() {
            let list = q.topn(UserId(u), theta[u as usize], &stat);
            assert_eq!(list.len(), 5);
            let mut ids: Vec<u32> = list.iter().map(|i| i.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 5, "user {u} has duplicates");
            for item in &list {
                assert!(!train.contains(UserId(u), *item));
            }
        }
    }

    #[test]
    fn theta_extremes_switch_objective() {
        let (train, _, pop) = setup();
        let arec = NormalizedScores::new(&pop);
        let in_train = train_item_mask(&train);
        let stat = StatCoverage::fit(&train);
        let mut q = UserQuery::new(&arec, &train, &in_train, 5);
        let u = UserId(0);
        // θ=0 ranks purely by accuracy; θ=1 purely by coverage. On skewed
        // data the two orderings should differ.
        let acc_only = q.topn(u, 0.0, &stat);
        let cov_only = q.topn(u, 1.0, &stat);
        assert_ne!(acc_only, cov_only);
    }

    #[test]
    fn exclusions_drop_items_without_shrinking_list() {
        let (train, theta, pop) = setup();
        let arec = NormalizedScores::new(&pop);
        let in_train = train_item_mask(&train);
        let stat = StatCoverage::fit(&train);
        let mut q = UserQuery::new(&arec, &train, &in_train, 5);
        let u = UserId(1);
        let base = q.topn(u, theta[1], &stat);
        let mut excluded: Vec<u32> = base.iter().map(|i| i.0).collect();
        excluded.sort_unstable();
        let next = q.topn_excluding(u, theta[1], &stat, &excluded);
        assert_eq!(next.len(), 5, "catalog is large enough to refill");
        for item in &next {
            assert!(!base.contains(item), "{item:?} was excluded");
        }
    }

    #[test]
    fn snapshot_provider_matches_manual_combination() {
        let (train, theta, pop) = setup();
        let arec = NormalizedScores::new(&pop);
        let in_train = train_item_mask(&train);
        let n_items = train.n_items() as usize;
        let mut snaps = CoverageSnapshots::new();
        let mut cov = DynCoverage::new(train.n_items());
        cov.observe(&[ItemId(0), ItemId(0), ItemId(1)]);
        snaps.push(0.5, cov.snapshot());
        let mut q = UserQuery::new(&arec, &train, &in_train, 5);
        let via_provider = q.topn(UserId(2), theta[2], &snaps);

        // Manual: same scores assembled by hand.
        let mut a = vec![0.0; n_items];
        let mut c = vec![0.0; n_items];
        let mut s = vec![0.0; n_items];
        arec.accuracy_scores(UserId(2), &mut a);
        cov.scores_into(&mut c);
        combine_into(theta[2], &a, &c, &mut s);
        let manual = select_top_n(&s, unseen_train_candidates(&train, &in_train, UserId(2)), 5);
        assert_eq!(via_provider, manual);
    }
}
