//! The per-request GANC query path: compute **one** user's top-N against
//! shared, read-only coverage state, without running the batch optimizer.
//!
//! The paper's value function `v_u(P_u) = (1−θ_u)·a(P_u) + θ_u·c(P_u)`
//! (Eq. III.1) is separable per user once the coverage term is fixed, and
//! OSLG's own parallel phase (Algorithm 1, lines 11–15) already serves
//! every non-sampled user independently from the frequency snapshot of the
//! nearest sampled θ. [`UserQuery`] extracts exactly that computation as a
//! reusable API so an online serving path can answer single requests — the
//! batch paths in [`crate::oslg`] and [`crate::ganc`] are built on it, which
//! makes "single-user query equals batch output" true by construction.
//!
//! ## The fused hot path
//!
//! A request does **one** full-catalog pass (the accuracy scorer's, which
//! is irreducible: per-user normalization needs the whole vector) and then
//! streams candidates straight into the selection heap, evaluating
//! `(1−θ)a + θc` per candidate against a [`CoverageView`]. No dense
//! coverage buffer is filled, no combined-score buffer is written, and
//! non-candidate items (the user's seen set) are never scored. The result
//! is bit-identical to the three-buffer reference computation
//! ([`combine_into`] over dense fills), which the property suite checks.

use crate::accuracy::AccuracyScorer;
use crate::coverage::{CoverageSnapshots, CoverageView, DynCoverage, RandCoverage, StatCoverage};
use ganc_dataset::{Interactions, ItemId, UserId};
use ganc_recommender::random::unit_hash;
use ganc_recommender::topn::{for_each_candidate_run, TopNCollector};

/// Shared coverage state a single-user query scores against.
///
/// Implementations resolve one request into a [`CoverageView`] with
/// `c(i) ∈ (0, 1]` per item. They are read-only by design: the same
/// provider value can back any number of concurrent queries.
pub trait CoverageProvider: Sync {
    /// Resolve the per-request view for `user` with long-tail preference
    /// `theta_u`. Cheap: every state hands out borrowed slices or hash
    /// parameters (snapshot overlays are precomputed at push/load time).
    fn view(&self, user: UserId, theta_u: f64) -> CoverageView<'_>;

    /// Fill dense per-item coverage scores for a request — the reference
    /// path the fused scorer is checked against.
    fn coverage_into(&self, user: UserId, theta_u: f64, out: &mut [f64]);
}

impl CoverageProvider for StatCoverage {
    fn view(&self, _user: UserId, _theta_u: f64) -> CoverageView<'_> {
        CoverageView::Dense(self.scores())
    }

    fn coverage_into(&self, _user: UserId, _theta_u: f64, out: &mut [f64]) {
        out.copy_from_slice(self.scores());
    }
}

impl CoverageProvider for RandCoverage {
    fn view(&self, user: UserId, _theta_u: f64) -> CoverageView<'_> {
        self.view_for(user)
    }

    fn coverage_into(&self, user: UserId, _theta_u: f64, out: &mut [f64]) {
        self.scores_for(user, out);
    }
}

impl CoverageProvider for DynCoverage {
    fn view(&self, _user: UserId, _theta_u: f64) -> CoverageView<'_> {
        CoverageView::Dense(self.scores())
    }

    fn coverage_into(&self, _user: UserId, _theta_u: f64, out: &mut [f64]) {
        self.scores_into(out);
    }
}

impl CoverageProvider for CoverageSnapshots {
    fn view(&self, _user: UserId, theta_u: f64) -> CoverageView<'_> {
        self.view_near(theta_u)
    }

    fn coverage_into(&self, _user: UserId, theta_u: f64, out: &mut [f64]) {
        self.scores_near(theta_u, out);
    }
}

/// Cut the user population into `shards` θ bands of (approximately) equal
/// population: the returned `shards − 1` ascending cut points partition
/// `[0, 1]` into half-open bands `[cuts[j−1], cuts[j])` (the first band is
/// open below, the last open above). Users are assigned with
/// [`shard_of`], so a θ exactly on a cut deterministically lands in the
/// band *above* it — duplicates of one θ value can never straddle a cut.
///
/// Duplicate-heavy θ distributions may produce repeated cut values; the
/// bands between equal cuts are simply empty, which shard routing and
/// [`CoverageSnapshots::slice_band`] both tolerate.
pub fn cut_theta_bands(thetas: &[f64], shards: usize) -> Vec<f64> {
    let shards = shards.max(1);
    if shards == 1 || thetas.is_empty() {
        return Vec::new();
    }
    let mut sorted = thetas.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    (1..shards)
        .map(|j| sorted[(j * sorted.len()) / shards])
        .collect()
}

/// The θ band a preference value falls in, given ascending `cuts` from
/// [`cut_theta_bands`]: the number of cuts ≤ `theta`. Always a valid shard
/// index in `0..cuts.len() + 1`.
#[inline]
pub fn shard_of(cuts: &[f64], theta: f64) -> usize {
    cuts.partition_point(|&c| c <= theta)
}

/// The half-open θ interval `[lo, hi)` of band `j` under ascending `cuts`
/// (`−∞` below the first cut, `+∞` above the last) — the single source of
/// the band-boundary convention [`shard_of`] routes by and
/// `ModelBundle::slice_theta_band` slices by.
#[inline]
pub fn band_bounds(cuts: &[f64], j: usize) -> (f64, f64) {
    debug_assert!(j <= cuts.len(), "band index out of range");
    let lo = if j == 0 {
        f64::NEG_INFINITY
    } else {
        cuts[j - 1]
    };
    let hi = if j == cuts.len() {
        f64::INFINITY
    } else {
        cuts[j]
    };
    (lo, hi)
}

/// Online post-processor selection for a per-request override (the batch
/// re-rankers in `ganc-rerank` run behind the fused path when requested).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RerankMode {
    /// Personalized Ranking Adaptation (Jugovac et al., 2017).
    Pra,
    /// Ranking-Based Techniques (Adomavicius & Kwon, 2012).
    Rbt,
    /// 5D resource-allocation re-ranking (Ho et al., 2014).
    FiveD,
}

impl RerankMode {
    /// Parse the wire token (`rerank=pra|rbt|5d`).
    pub fn parse(s: &str) -> Option<RerankMode> {
        match s {
            "pra" => Some(RerankMode::Pra),
            "rbt" => Some(RerankMode::Rbt),
            "5d" => Some(RerankMode::FiveD),
            _ => None,
        }
    }

    /// The wire token this mode round-trips through.
    pub fn as_str(&self) -> &'static str {
        match self {
            RerankMode::Pra => "pra",
            RerankMode::Rbt => "rbt",
            RerankMode::FiveD => "5d",
        }
    }
}

/// Per-request trade-off overrides, threaded from the HTTP surface down to
/// the fused query path. The default value (`RequestOptions::default()`)
/// means "serve the fitted scenario" and MUST take the exact default code
/// path — overrides are strictly pay-for-what-you-use.
///
/// `n` truncation deliberately does **not** live here: list size is a
/// presentation concern the HTTP layer applies (`?n=` caps the returned
/// prefix), so engines always produce the full fitted-N list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RequestOptions {
    /// Serve at this θ instead of the user's fitted `theta[u]`. Routed to
    /// the band that owns it via [`shard_of`]. Must be finite in `[0, 1]`.
    pub theta: Option<f64>,
    /// Extra item ids excluded from the candidate pool for this request
    /// only — sorted ascending and deduplicated (see
    /// [`RequestOptions::set_exclude`]).
    pub exclude: Vec<u32>,
    /// Run this batch re-ranker as an online post-processor.
    pub rerank: Option<RerankMode>,
}

impl RequestOptions {
    /// True when every field is at its default — the request asks for the
    /// fitted scenario and must be served by the unmodified default path
    /// (including the user-keyed LRU cache).
    pub fn is_default(&self) -> bool {
        self.theta.is_none() && self.exclude.is_empty() && self.rerank.is_none()
    }

    /// Store an exclusion list, sorting and deduplicating it so downstream
    /// merge code can rely on ascending unique ids.
    pub fn set_exclude(&mut self, mut ids: Vec<u32>) {
        ids.sort_unstable();
        ids.dedup();
        self.exclude = ids;
    }
}

/// Combined GANC score `(1−θ)a + θc` written into `out` (Eq. III.1) — the
/// dense reference combiner; the fused path computes the same expression
/// per candidate without materializing `out`.
#[inline]
pub fn combine_into(theta_u: f64, a: &[f64], c: &[f64], out: &mut [f64]) {
    let w_a = 1.0 - theta_u;
    for ((o, &av), &cv) in out.iter_mut().zip(a).zip(c) {
        *o = w_a * av + theta_u * cv;
    }
}

/// The fused selection core: stream the user's candidates (unseen train
/// items minus `extra_seen`) through `(1−θ)a + θc` straight into the
/// bounded top-N heap. One pass, no dense coverage or combined-score
/// buffer, non-candidates never touched.
///
/// `non_train` is the sorted complement of the train-item mask
/// ([`ganc_recommender::topn::non_train_items`]) — request-independent, so
/// callers compute it once and the candidate space becomes contiguous id
/// runs with no per-item mask branch. The exclusion merge costs
/// `O(|seen| + |extra_seen| + |non_train|)` for the whole request; batch
/// phases that serve the same user repeatedly can pay it once via
/// [`candidate_runs`] + [`fused_select_runs`] instead.
///
/// The inner loops are monomorphized per [`CoverageView`] variant, and the
/// scores are the exact expression [`combine_into`] computes, so results
/// are bit-identical to the three-buffer reference.
#[allow(clippy::too_many_arguments)]
pub fn fused_select(
    n: usize,
    theta_u: f64,
    a: &[f64],
    view: &CoverageView<'_>,
    train: &Interactions,
    non_train: &[u32],
    user: UserId,
    extra_seen: &[u32],
) -> Vec<ItemId> {
    debug_assert!(extra_seen.windows(2).all(|w| w[0] < w[1]));
    fused_select_with(
        n,
        theta_u,
        a,
        view,
        StreamRuns {
            train,
            user,
            extra_seen,
            non_train,
        },
    )
}

/// The user's candidate id space as materialized `[lo, hi)` runs — what
/// [`for_each_candidate_run`] streams, frozen into a reusable list. The
/// runs only change when the user's exclusion state does (an ingested
/// interaction), so batch phases hoist them per user and replay them with
/// [`fused_select_runs`] instead of re-merging the exclusion lists on
/// every request.
pub fn candidate_runs(
    train: &Interactions,
    user: UserId,
    extra_seen: &[u32],
    non_train: &[u32],
) -> Vec<(u32, u32)> {
    let mut runs = Vec::new();
    for_each_candidate_run(train, user, extra_seen, non_train, |lo, hi| {
        runs.push((lo, hi));
    });
    runs
}

/// [`fused_select`] that also *records* the candidate runs it streamed:
/// the returned run list equals [`candidate_runs`] for the same exclusion
/// state, captured during the selection pass itself, so a caller that
/// wants to hoist the runs for later requests pays only the `Vec` pushes
/// on the first serve — never a separate merge walk.
#[allow(clippy::too_many_arguments)]
pub fn fused_select_recording(
    n: usize,
    theta_u: f64,
    a: &[f64],
    view: &CoverageView<'_>,
    train: &Interactions,
    non_train: &[u32],
    user: UserId,
    extra_seen: &[u32],
) -> (Vec<ItemId>, Vec<(u32, u32)>) {
    debug_assert!(extra_seen.windows(2).all(|w| w[0] < w[1]));
    let mut runs = Vec::new();
    let list = fused_select_with(
        n,
        theta_u,
        a,
        view,
        RecordingRuns {
            inner: StreamRuns {
                train,
                user,
                extra_seen,
                non_train,
            },
            out: &mut runs,
        },
    );
    (list, runs)
}

/// [`fused_select`] over precomputed [`candidate_runs`]: identical scoring
/// and selection, with the exclusion merge already paid. Results are
/// bit-identical to the streaming variant by construction (both walk the
/// exact same runs in the same order).
pub fn fused_select_runs(
    n: usize,
    theta_u: f64,
    a: &[f64],
    view: &CoverageView<'_>,
    runs: &[(u32, u32)],
) -> Vec<ItemId> {
    fused_select_with(n, theta_u, a, view, SliceRuns(runs))
}

/// A producer of ascending candidate `[lo, hi)` runs the fused core can
/// consume. A concrete type (not a `dyn` callback) so every
/// (source, view-variant) pairing monomorphizes into the same tight loop
/// nest the original single-function implementation compiled to —
/// indirection here measurably deoptimizes the per-item hot loop.
trait RunSource {
    fn for_each(self, run: impl FnMut(u32, u32));
}

/// Stream the exclusion merge ([`for_each_candidate_run`]).
struct StreamRuns<'a> {
    train: &'a Interactions,
    user: UserId,
    extra_seen: &'a [u32],
    non_train: &'a [u32],
}

impl RunSource for StreamRuns<'_> {
    fn for_each(self, run: impl FnMut(u32, u32)) {
        for_each_candidate_run(self.train, self.user, self.extra_seen, self.non_train, run);
    }
}

/// Stream the merge while recording each run into `out`.
struct RecordingRuns<'a> {
    inner: StreamRuns<'a>,
    out: &'a mut Vec<(u32, u32)>,
}

impl RunSource for RecordingRuns<'_> {
    fn for_each(self, mut run: impl FnMut(u32, u32)) {
        let out = self.out;
        self.inner.for_each(|lo, hi| {
            out.push((lo, hi));
            run(lo, hi);
        });
    }
}

/// Replay precomputed runs.
struct SliceRuns<'a>(&'a [(u32, u32)]);

impl RunSource for SliceRuns<'_> {
    fn for_each(self, mut run: impl FnMut(u32, u32)) {
        for &(lo, hi) in self.0 {
            run(lo, hi);
        }
    }
}

/// Shared core of [`fused_select`] / [`fused_select_recording`] /
/// [`fused_select_runs`]: `runs` yields the candidate `[lo, hi)` runs in
/// ascending order; the scoring loops are identical between the streaming
/// and hoisted callers.
// The negated `!(cap <= floor)` is deliberate: it must also take the slow
// path when either side is NaN, which `cap > floor` would skip.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn fused_select_with<R: RunSource>(
    n: usize,
    theta_u: f64,
    a: &[f64],
    view: &CoverageView<'_>,
    runs: R,
) -> Vec<ItemId> {
    let w_a = 1.0 - theta_u;
    let mut col = TopNCollector::new(n);
    // The collector's cached-minimum fast reject makes each losing offer a
    // single well-predicted compare, so the dense loops just compute every
    // candidate's score (two multiplies and an add — cheaper than a
    // data-dependent branch). Only the hashed variant pre-prunes: coverage
    // never exceeds 1, so `w_a·a + θ ≤ floor` proves a miss (exactly, in
    // f64: `fl(θ·c) ≤ θ` and `fl` is monotone; at equality the candidate
    // ties and the later-iterated, larger item id loses) and skips the hash
    // call. NaN scores fall through every shortcut comparison (false) to
    // the exact heap comparison. Each run is walked as zipped subslices so
    // the per-item loads carry no bounds checks.
    match view {
        CoverageView::Dense(c) => {
            runs.for_each(|lo, hi| {
                let (l, h) = (lo as usize, hi as usize);
                for (off, (&av, &cv)) in a[l..h].iter().zip(&c[l..h]).enumerate() {
                    col.offer(lo + off as u32, w_a * av + theta_u * cv);
                }
            });
        }
        CoverageView::Hashed { seed, user: u } => {
            runs.for_each(|lo, hi| {
                let (l, h) = (lo as usize, hi as usize);
                for (off, &av) in a[l..h].iter().enumerate() {
                    let wav = w_a * av;
                    if !(wav + theta_u <= col.current_floor()) {
                        let i = lo + off as u32;
                        col.offer(i, wav + theta_u * unit_hash(*seed, *u, i));
                    }
                }
            });
        }
        CoverageView::Patched { base, overlay } => {
            let mut pos = 0usize;
            runs.for_each(|lo, hi| {
                let (l, h) = (lo as usize, hi as usize);
                for (off, (&av, &bv)) in a[l..h].iter().zip(&base[l..h]).enumerate() {
                    let i = lo + off as u32;
                    while pos < overlay.len() && overlay[pos].0 < i {
                        pos += 1;
                    }
                    let cv = match overlay.get(pos) {
                        Some(&(oi, os)) if oi == i => os,
                        _ => bv,
                    };
                    col.offer(i, w_a * av + theta_u * cv);
                }
            });
        }
    }
    col.finish()
}

/// A reusable single-user top-N computation.
///
/// Owns the per-request accuracy buffer and overlay scratch, so a
/// long-lived worker allocates once and serves any number of requests. Not
/// `Sync` (the buffers are mutable state); create one per worker thread.
///
/// ```
/// use ganc_core::accuracy::NormalizedScores;
/// use ganc_core::coverage::StatCoverage;
/// use ganc_core::query::UserQuery;
/// use ganc_dataset::synth::DatasetProfile;
/// use ganc_dataset::UserId;
/// use ganc_recommender::pop::MostPopular;
/// use ganc_recommender::topn::train_item_mask;
///
/// let data = DatasetProfile::tiny().generate(3);
/// let split = data.split_per_user(0.5, 1).unwrap();
/// let pop = MostPopular::fit(&split.train);
/// let arec = NormalizedScores::new(&pop);
/// let stat = StatCoverage::fit(&split.train);
/// let in_train = train_item_mask(&split.train);
///
/// let mut q = UserQuery::new(&arec, &split.train, &in_train, 5);
/// let list = q.topn(UserId(0), 0.3, &stat);
/// assert_eq!(list.len(), 5);
/// ```
pub struct UserQuery<'a> {
    arec: &'a dyn AccuracyScorer,
    train: &'a Interactions,
    /// Sorted ids of items outside the train mask (excluded from every
    /// candidate pool), derived once from `in_train`.
    non_train: Vec<u32>,
    n: usize,
    a_buf: Vec<f64>,
}

impl<'a> UserQuery<'a> {
    /// A query context over an accuracy scorer and the train set whose
    /// unseen items form the candidate pool. `in_train` is the item mask
    /// from [`ganc_recommender::topn::train_item_mask`] (passed in so many
    /// workers can share one).
    pub fn new(
        arec: &'a dyn AccuracyScorer,
        train: &'a Interactions,
        in_train: &'a [bool],
        n: usize,
    ) -> UserQuery<'a> {
        let n_items = train.n_items() as usize;
        assert_eq!(in_train.len(), n_items, "item mask must cover the catalog");
        UserQuery {
            arec,
            train,
            non_train: ganc_recommender::topn::non_train_items(in_train),
            n,
            a_buf: vec![0.0; n_items],
        }
    }

    /// List size `N` this query produces.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The user's top-N under `v_u = (1−θ_u)·a + θ_u·c` against the given
    /// coverage state.
    pub fn topn(
        &mut self,
        user: UserId,
        theta_u: f64,
        coverage: &dyn CoverageProvider,
    ) -> Vec<ItemId> {
        self.topn_excluding(user, theta_u, coverage, &[])
    }

    /// Like [`UserQuery::topn`], additionally excluding `extra_seen`
    /// (sorted, deduplicated item ids) from the candidate pool — the hook
    /// for interactions ingested after the train snapshot was frozen.
    ///
    /// Fused candidate-only scoring: after the accuracy fill, each
    /// candidate is scored and offered to the bounded selection heap in a
    /// single pass. The candidate iterator yields ascending item ids, which
    /// lets the coverage cursor merge any sparse overlay in `O(|overlay|)`
    /// total.
    pub fn topn_excluding(
        &mut self,
        user: UserId,
        theta_u: f64,
        coverage: &dyn CoverageProvider,
        extra_seen: &[u32],
    ) -> Vec<ItemId> {
        self.arec.accuracy_scores(user, &mut self.a_buf);
        let view = coverage.view(user, theta_u);
        fused_select(
            self.n,
            theta_u,
            &self.a_buf,
            &view,
            self.train,
            &self.non_train,
            user,
            extra_seen,
        )
    }

    /// [`UserQuery::topn_excluding`] that also records the candidate runs
    /// it streamed (see [`fused_select_recording`]) — the first-serve half
    /// of run hoisting: select and capture in one pass.
    pub fn topn_excluding_recording(
        &mut self,
        user: UserId,
        theta_u: f64,
        coverage: &dyn CoverageProvider,
        extra_seen: &[u32],
    ) -> (Vec<ItemId>, Vec<(u32, u32)>) {
        self.arec.accuracy_scores(user, &mut self.a_buf);
        let view = coverage.view(user, theta_u);
        fused_select_recording(
            self.n,
            theta_u,
            &self.a_buf,
            &view,
            self.train,
            &self.non_train,
            user,
            extra_seen,
        )
    }

    /// Like [`UserQuery::topn_excluding`] with the candidate-run merge
    /// already paid: `runs` must be this user's current
    /// [`candidate_runs`]. Batch phases serving many requests per user
    /// hoist the runs once (they only change on ingest) and replay them
    /// here.
    pub fn topn_with_runs(
        &mut self,
        user: UserId,
        theta_u: f64,
        coverage: &dyn CoverageProvider,
        runs: &[(u32, u32)],
    ) -> Vec<ItemId> {
        self.arec.accuracy_scores(user, &mut self.a_buf);
        let view = coverage.view(user, theta_u);
        fused_select_runs(self.n, theta_u, &self.a_buf, &view, runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::NormalizedScores;
    use ganc_dataset::synth::DatasetProfile;
    use ganc_preference::GeneralizedConfig;
    use ganc_recommender::pop::MostPopular;
    use ganc_recommender::topn::{select_top_n, train_item_mask, unseen_train_candidates};

    fn setup() -> (Interactions, Vec<f64>, MostPopular) {
        let data = DatasetProfile::small().generate(33);
        let split = data.split_per_user(0.5, 2).unwrap();
        let theta = GeneralizedConfig::default().estimate(&split.train);
        let pop = MostPopular::fit(&split.train);
        (split.train, theta, pop)
    }

    /// The three-buffer reference scorer the fused path must match exactly.
    fn naive_topn(
        arec: &dyn AccuracyScorer,
        train: &Interactions,
        in_train: &[bool],
        user: UserId,
        theta_u: f64,
        coverage: &dyn CoverageProvider,
        n: usize,
    ) -> Vec<ItemId> {
        let n_items = train.n_items() as usize;
        let mut a = vec![0.0; n_items];
        let mut c = vec![0.0; n_items];
        let mut s = vec![0.0; n_items];
        arec.accuracy_scores(user, &mut a);
        coverage.coverage_into(user, theta_u, &mut c);
        combine_into(theta_u, &a, &c, &mut s);
        select_top_n(&s, unseen_train_candidates(train, in_train, user), n)
    }

    #[test]
    fn query_respects_topn_contract() {
        let (train, theta, pop) = setup();
        let arec = NormalizedScores::new(&pop);
        let in_train = train_item_mask(&train);
        let stat = StatCoverage::fit(&train);
        let mut q = UserQuery::new(&arec, &train, &in_train, 5);
        for u in 0..train.n_users() {
            let list = q.topn(UserId(u), theta[u as usize], &stat);
            assert_eq!(list.len(), 5);
            let mut ids: Vec<u32> = list.iter().map(|i| i.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 5, "user {u} has duplicates");
            for item in &list {
                assert!(!train.contains(UserId(u), *item));
            }
        }
    }

    #[test]
    fn theta_extremes_switch_objective() {
        let (train, _, pop) = setup();
        let arec = NormalizedScores::new(&pop);
        let in_train = train_item_mask(&train);
        let stat = StatCoverage::fit(&train);
        let mut q = UserQuery::new(&arec, &train, &in_train, 5);
        let u = UserId(0);
        // θ=0 ranks purely by accuracy; θ=1 purely by coverage. On skewed
        // data the two orderings should differ.
        let acc_only = q.topn(u, 0.0, &stat);
        let cov_only = q.topn(u, 1.0, &stat);
        assert_ne!(acc_only, cov_only);
    }

    #[test]
    fn exclusions_drop_items_without_shrinking_list() {
        let (train, theta, pop) = setup();
        let arec = NormalizedScores::new(&pop);
        let in_train = train_item_mask(&train);
        let stat = StatCoverage::fit(&train);
        let mut q = UserQuery::new(&arec, &train, &in_train, 5);
        let u = UserId(1);
        let base = q.topn(u, theta[1], &stat);
        let mut excluded: Vec<u32> = base.iter().map(|i| i.0).collect();
        excluded.sort_unstable();
        let next = q.topn_excluding(u, theta[1], &stat, &excluded);
        assert_eq!(next.len(), 5, "catalog is large enough to refill");
        for item in &next {
            assert!(!base.contains(item), "{item:?} was excluded");
        }
    }

    #[test]
    fn fused_path_matches_naive_reference_for_all_providers() {
        let (train, theta, pop) = setup();
        let arec = NormalizedScores::new(&pop);
        let in_train = train_item_mask(&train);
        let stat = StatCoverage::fit(&train);
        let rand = RandCoverage::new(7);
        let mut dynamic = DynCoverage::new(train.n_items());
        dynamic.observe(&[ItemId(0), ItemId(1), ItemId(1), ItemId(4)]);
        let mut snaps = CoverageSnapshots::for_items(train.n_items());
        snaps.push_assigned(0.2, &[ItemId(0), ItemId(3)]);
        snaps.push_assigned(0.6, &[ItemId(3), ItemId(5)]);
        let providers: [&dyn CoverageProvider; 4] = [&stat, &rand, &dynamic, &snaps];
        let mut q = UserQuery::new(&arec, &train, &in_train, 5);
        for provider in providers {
            for u in (0..train.n_users()).step_by(17) {
                for t in [0.0, theta[u as usize], 1.0] {
                    let fused = q.topn(UserId(u), t, provider);
                    let naive = naive_topn(&arec, &train, &in_train, UserId(u), t, provider, 5);
                    assert_eq!(fused, naive, "user {u} θ={t}");
                }
            }
        }
    }

    #[test]
    fn hoisted_runs_match_the_streaming_merge_for_all_providers() {
        let (train, theta, pop) = setup();
        let arec = NormalizedScores::new(&pop);
        let in_train = train_item_mask(&train);
        let non_train = ganc_recommender::topn::non_train_items(&in_train);
        let stat = StatCoverage::fit(&train);
        let rand = RandCoverage::new(7);
        let mut snaps = CoverageSnapshots::for_items(train.n_items());
        snaps.push_assigned(0.2, &[ItemId(0), ItemId(3)]);
        snaps.push_assigned(0.6, &[ItemId(3), ItemId(5)]);
        let providers: [&dyn CoverageProvider; 3] = [&stat, &rand, &snaps];
        let mut q = UserQuery::new(&arec, &train, &in_train, 5);
        for provider in providers {
            for u in (0..train.n_users()).step_by(13) {
                for extra in [vec![], vec![0u32, 2, 9]] {
                    let runs = candidate_runs(&train, UserId(u), &extra, &non_train);
                    // The runs really cover the candidate space: streaming
                    // and hoisted selection agree bit-for-bit.
                    let hoisted = q.topn_with_runs(UserId(u), theta[u as usize], provider, &runs);
                    let streamed = q.topn_excluding(UserId(u), theta[u as usize], provider, &extra);
                    assert_eq!(hoisted, streamed, "user {u} extra={extra:?}");
                }
            }
        }
    }

    #[test]
    fn theta_band_cuts_balance_population() {
        let thetas: Vec<f64> = (0..100).map(|k| k as f64 / 100.0).collect();
        let cuts = cut_theta_bands(&thetas, 4);
        assert_eq!(cuts.len(), 3);
        assert!(cuts.windows(2).all(|w| w[0] <= w[1]));
        let mut pop = [0usize; 4];
        for &t in &thetas {
            pop[shard_of(&cuts, t)] += 1;
        }
        assert_eq!(pop, [25, 25, 25, 25]);
    }

    #[test]
    fn theta_on_a_cut_routes_above_it() {
        let cuts = vec![0.25, 0.5, 0.75];
        assert_eq!(shard_of(&cuts, 0.0), 0);
        assert_eq!(shard_of(&cuts, 0.25), 1, "cut value belongs above");
        assert_eq!(shard_of(&cuts, 0.49), 1);
        assert_eq!(shard_of(&cuts, 0.5), 2);
        assert_eq!(shard_of(&cuts, 1.0), 3);
    }

    #[test]
    fn duplicate_thetas_never_straddle_a_cut() {
        // 60% of users share one θ: cuts repeat and some bands are empty,
        // but every duplicate lands in the same band.
        let mut thetas = vec![0.5; 60];
        thetas.extend((0..40).map(|k| k as f64 / 40.0));
        let cuts = cut_theta_bands(&thetas, 5);
        let bands: std::collections::HashSet<usize> = thetas
            .iter()
            .filter(|&&t| t == 0.5)
            .map(|&t| shard_of(&cuts, t))
            .collect();
        assert_eq!(bands.len(), 1, "all θ=0.5 users share one shard");
    }

    #[test]
    fn degenerate_plans_have_no_cuts() {
        assert!(cut_theta_bands(&[0.1, 0.9], 1).is_empty());
        assert!(cut_theta_bands(&[], 4).is_empty());
        assert_eq!(shard_of(&[], 0.7), 0);
    }

    #[test]
    fn snapshot_provider_matches_manual_combination() {
        let (train, theta, pop) = setup();
        let arec = NormalizedScores::new(&pop);
        let in_train = train_item_mask(&train);
        let n_items = train.n_items() as usize;
        let mut snaps = CoverageSnapshots::new();
        let mut cov = DynCoverage::new(train.n_items());
        cov.observe(&[ItemId(0), ItemId(0), ItemId(1)]);
        snaps.push(0.5, &cov.snapshot());
        let mut q = UserQuery::new(&arec, &train, &in_train, 5);
        let via_provider = q.topn(UserId(2), theta[2], &snaps);

        // Manual: same scores assembled by hand.
        let mut a = vec![0.0; n_items];
        let mut c = vec![0.0; n_items];
        let mut s = vec![0.0; n_items];
        arec.accuracy_scores(UserId(2), &mut a);
        cov.scores_into(&mut c);
        combine_into(theta[2], &a, &c, &mut s);
        let manual = select_top_n(&s, unseen_train_candidates(&train, &in_train, UserId(2)), 5);
        assert_eq!(via_provider, manual);
    }
}
