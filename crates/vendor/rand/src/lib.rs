//! Offline stand-in for the `rand` crate.
//!
//! Implements the slice of the rand 0.9-style API this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng`], the core [`Rng`] trait, the
//! [`RngExt`] extension (`random`, `random_range`) and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — deterministic,
//! high-quality for simulation purposes, and **not** a reproduction of the
//! real crate's stream (nothing in this workspace depends on the exact
//! stream, only on determinism).

/// A source of random bits.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be drawn uniformly by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u32 {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, span)` without modulo bias (Lemire's method).
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let low = m as u64;
        if low >= span {
            return (m >> 64) as u64;
        }
        // Rejection zone: accept unless low < 2^64 mod span.
        let threshold = span.wrapping_neg() % span;
        if low >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any [`Rng`].
pub trait RngExt: Rng {
    /// A uniform draw of `T` (`f64`/`f32` in `[0,1)`, full-width integers).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniform draw from `range`.
    #[inline]
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<T: Rng + ?Sized> RngExt for T {}

/// Construction of reproducible RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (expanded internally).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete RNG implementations.
    use super::{Rng, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Random slice operations.
    use super::{Rng, RngExt};

    /// Shuffling and random selection over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.random_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(5usize..=9);
            assert!((5..=9).contains(&y));
            let z = rng.random_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn range_samples_cover_support() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [10, 20, 30];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
