//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize, Deserialize)]` (no `syn`/`quote` in the
//! offline environment): the input item is tokenized manually and the impl
//! is emitted as a string. Supported shapes — everything this workspace
//! derives on:
//!
//! * non-generic structs with named fields,
//! * non-generic tuple structs,
//! * non-generic enums with unit variants only.
//!
//! Unsupported shapes produce a `compile_error!` naming the limitation.
//! Fields are serialized positionally in declaration order; there is no
//! attribute support (`#[serde(...)]` attributes are rejected loudly).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the derive input turned out to be.
enum Shape {
    /// Struct with named fields (field names in declaration order).
    Named(Vec<String>),
    /// Tuple struct with this many fields.
    Tuple(usize),
    /// Enum with unit variants only (variant names in declaration order).
    UnitEnum(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Split a field/variant list group at top-level commas. Tracks `<`/`>`
/// nesting so commas inside generic arguments don't split; parens/brackets
/// arrive as single `Group` tokens and need no tracking.
fn split_top_level(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle: i32 = 0;
    for t in tokens {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle += 1,
                // `->` in fn-pointer types can unbalance a naive count;
                // clamp at zero so a stray `>` cannot push us negative.
                '>' => angle = (angle - 1).max(0),
                ',' if angle == 0 => {
                    chunks.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Drop leading attributes (`#[...]`) and visibility (`pub`, `pub(...)`)
/// from a token chunk.
fn strip_attrs_and_vis(chunk: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < chunk.len() {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // `#` then the bracket group.
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    &chunk[i..]
}

fn parse(input: TokenStream) -> Result<Parsed, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let body = strip_attrs_and_vis(&tokens);
    let mut iter = body.iter();
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    let next = iter.next();
    if let Some(TokenTree::Punct(p)) = next {
        if p.as_char() == '<' {
            return Err(format!(
                "serde_derive stand-in: generic type `{name}` is not supported"
            ));
        }
    }
    match (kind.as_str(), next) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let mut fields = Vec::new();
            for chunk in split_top_level(g.stream().into_iter().collect()) {
                let rest = strip_attrs_and_vis(&chunk);
                match rest.first() {
                    Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
                    other => return Err(format!("unsupported field shape: {other:?}")),
                }
            }
            Ok(Parsed {
                name,
                shape: Shape::Named(fields),
            })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let n = split_top_level(g.stream().into_iter().collect()).len();
            Ok(Parsed {
                name,
                shape: Shape::Tuple(n),
            })
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let mut variants = Vec::new();
            for chunk in split_top_level(g.stream().into_iter().collect()) {
                let rest = strip_attrs_and_vis(&chunk);
                match rest {
                    [TokenTree::Ident(id)] => variants.push(id.to_string()),
                    _ => {
                        return Err(format!(
                            "serde_derive stand-in: enum `{name}` has a non-unit \
                             variant; implement Serialize/Deserialize by hand"
                        ))
                    }
                }
            }
            Ok(Parsed {
                name,
                shape: Shape::UnitEnum(variants),
            })
        }
        _ => Err(format!(
            "serde_derive stand-in: unsupported item shape for `{name}`"
        )),
    }
}

/// `#[derive(Serialize)]` — positional field serialization.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => fields
            .iter()
            .map(|f| format!("::serde::Serialize::serialize(&self.{f}, s)?;"))
            .collect::<String>(),
        Shape::Tuple(n) => (0..*n)
            .map(|i| format!("::serde::Serialize::serialize(&self.{i}, s)?;"))
            .collect::<String>(),
        Shape::UnitEnum(variants) => {
            let arms = variants
                .iter()
                .enumerate()
                .map(|(i, v)| format!("{name}::{v} => {i}u32,"))
                .collect::<String>();
            format!("s.put_variant(match self {{ {arms} }})?;")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, s: &mut S) \
                 -> ::core::result::Result<(), S::Error> {{\n\
                 {body}\n\
                 ::core::result::Result::Ok(())\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// `#[derive(Deserialize)]` — positional field deserialization.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let inits = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::deserialize(d)?,"))
                .collect::<String>();
            format!("::core::result::Result::Ok({name} {{ {inits} }})")
        }
        Shape::Tuple(n) => {
            let inits = (0..*n)
                .map(|_| "::serde::Deserialize::deserialize(d)?,".to_string())
                .collect::<String>();
            format!("::core::result::Result::Ok({name}({inits}))")
        }
        Shape::UnitEnum(variants) => {
            let arms = variants
                .iter()
                .enumerate()
                .map(|(i, v)| format!("{i}u32 => {name}::{v},"))
                .collect::<String>();
            format!(
                "::core::result::Result::Ok(match d.get_variant()? {{\n\
                     {arms}\n\
                     _ => return ::core::result::Result::Err(d.invalid(\"variant tag\")),\n\
                 }})"
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(d: &mut D) \
                 -> ::core::result::Result<Self, D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
