//! Offline stand-in for `bincode` 1.x: a compact little-endian binary
//! encoding of the vendor-`serde` data model.
//!
//! Layout rules:
//! * fixed-width little-endian primitives (`bool` and `u8` as one byte),
//! * `usize` and sequence lengths as `u64`,
//! * strings as `u64` length + UTF-8 bytes,
//! * enum variants as a `u32` tag,
//! * struct fields positionally, no field names, no padding.

use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;

/// Encoding/decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bincode: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Encode a value to bytes.
pub fn serialize<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    let mut w = ByteWriter { buf: Vec::new() };
    value.serialize(&mut w)?;
    Ok(w.buf)
}

/// Decode a value from bytes. Trailing bytes are an error — a truncated or
/// over-long buffer almost always means a corrupt artifact.
pub fn deserialize<'de, T: Deserialize<'de>>(bytes: &'de [u8]) -> Result<T> {
    let mut r = ByteReader { bytes, pos: 0 };
    let value = T::deserialize(&mut r)?;
    if r.pos != bytes.len() {
        return Err(Error(format!(
            "{} trailing bytes after value",
            bytes.len() - r.pos
        )));
    }
    Ok(value)
}

struct ByteWriter {
    buf: Vec<u8>,
}

impl Serializer for ByteWriter {
    type Error = Error;

    fn put_bool(&mut self, v: bool) -> Result<()> {
        self.buf.push(v as u8);
        Ok(())
    }
    fn put_u8(&mut self, v: u8) -> Result<()> {
        self.buf.push(v);
        Ok(())
    }
    fn put_u32(&mut self, v: u32) -> Result<()> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn put_u64(&mut self, v: u64) -> Result<()> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn put_i64(&mut self, v: i64) -> Result<()> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn put_f32(&mut self, v: f32) -> Result<()> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn put_f64(&mut self, v: f64) -> Result<()> {
        self.buf.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn put_str(&mut self, v: &str) -> Result<()> {
        self.put_u64(v.len() as u64)?;
        self.buf.extend_from_slice(v.as_bytes());
        Ok(())
    }
    fn begin_seq(&mut self, len: usize) -> Result<()> {
        self.put_u64(len as u64)
    }
    fn put_variant(&mut self, index: u32) -> Result<()> {
        self.put_u32(index)
    }
}

struct ByteReader<'de> {
    bytes: &'de [u8],
    pos: usize,
}

impl<'de> ByteReader<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(Error(format!(
                "unexpected end of input at byte {} (wanted {n} more)",
                self.pos
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N]> {
        Ok(self.take(N)?.try_into().expect("length checked"))
    }
}

impl<'de> Deserializer<'de> for ByteReader<'de> {
    type Error = Error;

    fn get_bool(&mut self) -> Result<bool> {
        match self.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(Error(format!("invalid bool byte {b}"))),
        }
    }
    fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.array()?))
    }
    fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.array()?))
    }
    fn get_i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.array()?))
    }
    fn get_f32(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(self.array()?))
    }
    fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.array()?))
    }
    fn get_string(&mut self) -> Result<String> {
        let len = self.get_u64()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| Error(format!("invalid utf-8: {e}")))
    }
    fn get_seq_len(&mut self) -> Result<usize> {
        let len = self.get_u64()?;
        // A length exceeding the remaining input is corrupt (each element
        // needs at least one byte); fail here instead of OOM-ing in a
        // with_capacity downstream.
        if len > (self.bytes.len() - self.pos) as u64 {
            return Err(Error(format!("sequence length {len} exceeds input")));
        }
        Ok(len as usize)
    }
    fn get_variant(&mut self) -> Result<u32> {
        self.get_u32()
    }
    fn invalid(&self, what: &str) -> Error {
        Error(format!("invalid {what} at byte {}", self.pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
    struct Demo {
        a: u32,
        b: f64,
        name: String,
        xs: Vec<u64>,
        opt: Option<f32>,
        pair: (u32, bool),
    }

    #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
    struct Pair(u32, f64);

    #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
    enum Kind {
        Alpha,
        Beta,
        Gamma,
    }

    #[test]
    fn round_trip_named_struct() {
        let v = Demo {
            a: 7,
            b: -1.5,
            name: "héllo".into(),
            xs: vec![1, 2, 3],
            opt: Some(0.25),
            pair: (9, true),
        };
        let bytes = serialize(&v).unwrap();
        assert_eq!(deserialize::<Demo>(&bytes).unwrap(), v);
    }

    #[test]
    fn round_trip_tuple_struct_and_enum() {
        let bytes = serialize(&Pair(3, 4.5)).unwrap();
        assert_eq!(deserialize::<Pair>(&bytes).unwrap(), Pair(3, 4.5));
        for k in [Kind::Alpha, Kind::Beta, Kind::Gamma] {
            let bytes = serialize(&k).unwrap();
            assert_eq!(deserialize::<Kind>(&bytes).unwrap(), k);
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = serialize(&7u32).unwrap();
        bytes.push(0);
        assert!(deserialize::<u32>(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = serialize(&vec![1u64, 2, 3]).unwrap();
        assert!(deserialize::<Vec<u64>>(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn corrupt_length_rejected() {
        // A u64 length far beyond the buffer must error, not allocate.
        let bytes = u64::MAX.to_le_bytes().to_vec();
        assert!(deserialize::<Vec<u8>>(&bytes).is_err());
    }
}
