//! Offline stand-in for the `polling` crate: portable readiness
//! notification over raw file descriptors, std-only.
//!
//! The surface mirrors the subset `ganc-http` consumes: a [`Poller`]
//! holding a kernel readiness queue, [`Event`] interest/readiness flags
//! keyed by a caller-chosen `usize`, **oneshot** delivery (after an event
//! fires for a source, that source stays disarmed until [`Poller::modify`]
//! re-arms it), and a thread-safe [`Poller::notify`] that wakes a
//! concurrent [`Poller::wait`] from another thread.
//!
//! Backends: `epoll(7)` (with `EPOLLONESHOT`) on Linux, `poll(2)` with a
//! registration table on other Unix systems. Both call straight into the
//! C library symbols std already links — no external crates.

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

/// Interest in — or readiness of — a registered source, keyed by the
/// caller's identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen key identifying the source.
    pub key: usize,
    /// Interested in / ready for reading.
    pub readable: bool,
    /// Interested in / ready for writing.
    pub writable: bool,
}

impl Event {
    /// Interest in read readiness only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in write readiness only.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Interest in both directions.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest: the source stays registered but disarmed.
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// Key reserved for the internal notification pipe; user keys must not
/// collide with it.
const NOTIFY_KEY: usize = usize::MAX;

/// Clamp a timeout to the millisecond resolution the syscalls take,
/// rounding sub-millisecond waits *up* so a short timeout never becomes
/// a busy spin.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis().min(i32::MAX as u128) as i32;
            if ms == 0 && !d.is_zero() {
                1
            } else {
                ms
            }
        }
    }
}

#[cfg(target_os = "linux")]
mod sys {
    use super::*;
    use std::os::raw::{c_int, c_void};

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLONESHOT: u32 = 1 << 30;
    const O_NONBLOCK: c_int = 0o4000;
    const O_CLOEXEC: c_int = 0o2000000;

    // The kernel UAPI packs epoll_event on x86-64 only.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn interest_bits(ev: Event) -> u32 {
        let mut bits = EPOLLONESHOT;
        if ev.readable {
            bits |= EPOLLIN | EPOLLRDHUP;
        }
        if ev.writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    /// epoll-backed readiness queue with a self-pipe for wakeups.
    #[derive(Debug)]
    pub struct Poller {
        epfd: c_int,
        pipe_read: c_int,
        pipe_write: c_int,
    }

    // All fds are used through thread-safe syscalls.
    unsafe impl Send for Poller {}
    unsafe impl Sync for Poller {}

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let mut fds = [0 as c_int; 2];
            if let Err(e) = cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) }) {
                unsafe { close(epfd) };
                return Err(e);
            }
            let poller = Poller {
                epfd,
                pipe_read: fds[0],
                pipe_write: fds[1],
            };
            // The notify pipe is level-triggered and never disarmed: it is
            // drained inside wait(), not surfaced to the caller.
            let mut ev = EpollEvent {
                events: EPOLLIN,
                data: NOTIFY_KEY as u64,
            };
            cvt(unsafe { epoll_ctl(poller.epfd, EPOLL_CTL_ADD, poller.pipe_read, &mut ev) })?;
            Ok(poller)
        }

        pub fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest_bits(interest),
                data: interest.key as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) }).map(|_| ())
        }

        pub fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest_bits(interest),
                data: interest.key as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, fd, &mut ev) }).map(|_| ())
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, std::ptr::null_mut()) })
                .map(|_| ())
        }

        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            const CAP: usize = 256;
            let mut raw = [EpollEvent { events: 0, data: 0 }; CAP];
            let n = match cvt(unsafe {
                epoll_wait(
                    self.epfd,
                    raw.as_mut_ptr(),
                    CAP as c_int,
                    timeout_ms(timeout),
                )
            }) {
                Ok(n) => n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            let before = events.len();
            for ev in raw.iter().take(n) {
                let key = ev.data as usize;
                if key == NOTIFY_KEY {
                    // Drain every queued wakeup byte.
                    let mut buf = [0u8; 64];
                    while unsafe {
                        read(self.pipe_read, buf.as_mut_ptr() as *mut c_void, buf.len())
                    } > 0
                    {}
                    continue;
                }
                // Error/hangup surfaces as readable+writable: the caller's
                // next read/write observes the failure.
                let err = ev.events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
                events.push(Event {
                    key,
                    readable: ev.events & EPOLLIN != 0 || err,
                    writable: ev.events & EPOLLOUT != 0 || err,
                });
            }
            Ok(events.len() - before)
        }

        pub fn notify(&self) -> io::Result<()> {
            let byte = 1u8;
            // A full pipe already holds a pending wakeup; WouldBlock is fine.
            unsafe { write(self.pipe_write, &byte as *const u8 as *const c_void, 1) };
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.pipe_read);
                close(self.pipe_write);
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::*;
    use std::collections::HashMap;
    use std::os::raw::{c_int, c_void};
    use std::sync::Mutex;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const O_NONBLOCK: c_int = 0o4000;
    const F_GETFL: c_int = 3;
    const F_SETFL: c_int = 4;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }

    /// poll(2)-backed readiness queue: a registration table re-scanned on
    /// every wait, oneshot emulated by clearing interest after delivery.
    #[derive(Debug)]
    pub struct Poller {
        registry: Mutex<HashMap<RawFd, Event>>,
        pipe_read: c_int,
        pipe_write: c_int,
    }

    unsafe impl Send for Poller {}
    unsafe impl Sync for Poller {}

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let mut fds = [0 as c_int; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            for fd in fds {
                let flags = unsafe { fcntl(fd, F_GETFL, 0) };
                unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) };
            }
            Ok(Poller {
                registry: Mutex::new(HashMap::new()),
                pipe_read: fds[0],
                pipe_write: fds[1],
            })
        }

        pub fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            self.registry.lock().unwrap().insert(fd, interest);
            Ok(())
        }

        pub fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            self.registry.lock().unwrap().insert(fd, interest);
            Ok(())
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.registry.lock().unwrap().remove(&fd);
            Ok(())
        }

        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let mut fds = vec![PollFd {
                fd: self.pipe_read,
                events: POLLIN,
                revents: 0,
            }];
            let keys: Vec<(RawFd, Event)> = {
                let registry = self.registry.lock().unwrap();
                registry.iter().map(|(&fd, &ev)| (fd, ev)).collect()
            };
            for &(fd, ev) in &keys {
                let mut bits = 0i16;
                if ev.readable {
                    bits |= POLLIN;
                }
                if ev.writable {
                    bits |= POLLOUT;
                }
                if bits != 0 {
                    fds.push(PollFd {
                        fd,
                        events: bits,
                        revents: 0,
                    });
                }
            }
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms(timeout)) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(e);
            }
            let before = events.len();
            let mut registry = self.registry.lock().unwrap();
            for pfd in &fds {
                if pfd.revents == 0 {
                    continue;
                }
                if pfd.fd == self.pipe_read {
                    let mut buf = [0u8; 64];
                    while unsafe {
                        read(self.pipe_read, buf.as_mut_ptr() as *mut c_void, buf.len())
                    } > 0
                    {}
                    continue;
                }
                if let Some(ev) = registry.get_mut(&pfd.fd) {
                    let err = pfd.revents & (POLLERR | POLLHUP) != 0;
                    events.push(Event {
                        key: ev.key,
                        readable: pfd.revents & POLLIN != 0 || err,
                        writable: pfd.revents & POLLOUT != 0 || err,
                    });
                    // Oneshot: disarm until the caller re-arms via modify.
                    ev.readable = false;
                    ev.writable = false;
                }
            }
            Ok(events.len() - before)
        }

        pub fn notify(&self) -> io::Result<()> {
            let byte = 1u8;
            unsafe { write(self.pipe_write, &byte as *const u8 as *const c_void, 1) };
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.pipe_read);
                close(self.pipe_write);
            }
        }
    }
}

#[cfg(not(unix))]
compile_error!("the vendored polling stand-in supports Unix targets only");

/// Kernel readiness queue over raw fds with oneshot delivery and a
/// thread-safe wakeup.
#[derive(Debug)]
pub struct Poller {
    inner: sys::Poller,
}

impl Poller {
    /// Create a new readiness queue.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: sys::Poller::new()?,
        })
    }

    /// Register `source` with the given interest. The key must not be
    /// `usize::MAX` (reserved for the internal wakeup pipe).
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        assert!(interest.key != NOTIFY_KEY, "key usize::MAX is reserved");
        self.inner.add(source.as_raw_fd(), interest)
    }

    /// Re-arm (or change interest of) a registered source. Required after
    /// every delivered event: delivery disarms the source.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        assert!(interest.key != NOTIFY_KEY, "key usize::MAX is reserved");
        self.inner.modify(source.as_raw_fd(), interest)
    }

    /// Deregister a source. Must be called before the fd is closed.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.inner.delete(source.as_raw_fd())
    }

    /// Block until at least one source is ready, `timeout` elapses, or
    /// [`Poller::notify`] is called; append readiness events and return
    /// how many were appended. A wakeup or timeout appends none.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        self.inner.wait(events, timeout)
    }

    /// Wake a concurrent [`Poller::wait`] from any thread.
    pub fn notify(&self) -> io::Result<()> {
        self.inner.notify()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn listener_readability_and_oneshot_disarm() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller.add(&listener, Event::readable(7)).unwrap();

        let mut events = Vec::new();
        // Nothing pending: a short wait times out with no events.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].key, 7);
        assert!(events[0].readable);

        // Oneshot: without modify, the still-pending accept is not
        // redelivered.
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());

        // Re-arming delivers it again.
        poller.modify(&listener, Event::readable(7)).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn stream_write_readiness_and_data_arrival() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        poller.add(&server, Event::all(3)).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 3 && e.writable));

        events.clear();
        poller.modify(&server, Event::readable(3)).unwrap();
        client.write_all(b"x").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 3 && e.readable));
        poller.delete(&server).unwrap();
    }

    #[test]
    fn notify_wakes_a_blocked_wait_from_another_thread() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::clone(&poller);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.notify().unwrap();
        });
        let mut events = Vec::new();
        let start = std::time::Instant::now();
        // Without the notify this would block for 10 seconds.
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(start.elapsed() < Duration::from_secs(5));
        assert!(events.is_empty(), "a bare wakeup carries no events");
        handle.join().unwrap();
    }
}
