//! Offline stand-in for `serde`.
//!
//! A deliberately small serialization framework with serde-shaped traits:
//! [`Serialize`] / [`Deserialize`] driven by a [`Serializer`] /
//! [`Deserializer`] pair over a fixed, non-self-describing data model
//! (primitives, sequences, variant tags). The `bincode` vendor crate
//! provides the byte-oriented implementation; `serde_derive` provides
//! `#[derive(Serialize, Deserialize)]` for plain structs and unit enums.
//!
//! The wire format is *positional*: field names are never written, so struct
//! evolution requires explicit versioning (which `ganc-serve`'s
//! `ModelBundle` header provides).

pub use serde_derive::{Deserialize, Serialize};

/// A value that can be written to any [`Serializer`].
pub trait Serialize {
    /// Write `self` into `s`.
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error>;
}

/// A sink for the data model's primitive events.
pub trait Serializer {
    /// Error produced by the sink.
    type Error;

    /// Write a `bool`.
    fn put_bool(&mut self, v: bool) -> Result<(), Self::Error>;
    /// Write a `u8`.
    fn put_u8(&mut self, v: u8) -> Result<(), Self::Error>;
    /// Write a `u32`.
    fn put_u32(&mut self, v: u32) -> Result<(), Self::Error>;
    /// Write a `u64`.
    fn put_u64(&mut self, v: u64) -> Result<(), Self::Error>;
    /// Write an `i64`.
    fn put_i64(&mut self, v: i64) -> Result<(), Self::Error>;
    /// Write an `f32`.
    fn put_f32(&mut self, v: f32) -> Result<(), Self::Error>;
    /// Write an `f64`.
    fn put_f64(&mut self, v: f64) -> Result<(), Self::Error>;
    /// Write a string.
    fn put_str(&mut self, v: &str) -> Result<(), Self::Error>;
    /// Announce a sequence of `len` elements (elements follow).
    fn begin_seq(&mut self, len: usize) -> Result<(), Self::Error>;
    /// Write an enum variant tag (variant payload follows).
    fn put_variant(&mut self, index: u32) -> Result<(), Self::Error>;
}

/// A value that can be read back from any [`Deserializer`].
///
/// The lifetime mirrors real serde's `Deserialize<'de>` so bounds like
/// `for<'de> Deserialize<'de>` written against the real crate keep working.
pub trait Deserialize<'de>: Sized {
    /// Read a value from `d`.
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error>;
}

/// A source of the data model's primitive events.
pub trait Deserializer<'de> {
    /// Error produced by the source.
    type Error;

    /// Read a `bool`.
    fn get_bool(&mut self) -> Result<bool, Self::Error>;
    /// Read a `u8`.
    fn get_u8(&mut self) -> Result<u8, Self::Error>;
    /// Read a `u32`.
    fn get_u32(&mut self) -> Result<u32, Self::Error>;
    /// Read a `u64`.
    fn get_u64(&mut self) -> Result<u64, Self::Error>;
    /// Read an `i64`.
    fn get_i64(&mut self) -> Result<i64, Self::Error>;
    /// Read an `f32`.
    fn get_f32(&mut self) -> Result<f32, Self::Error>;
    /// Read an `f64`.
    fn get_f64(&mut self) -> Result<f64, Self::Error>;
    /// Read a string.
    fn get_string(&mut self) -> Result<String, Self::Error>;
    /// Read a sequence length (elements follow).
    fn get_seq_len(&mut self) -> Result<usize, Self::Error>;
    /// Read an enum variant tag.
    fn get_variant(&mut self) -> Result<u32, Self::Error>;
    /// Build an error for invalid data (derive-generated code uses this
    /// for unknown variant tags).
    fn invalid(&self, what: &str) -> Self::Error;
}

macro_rules! primitive_impls {
    ($($t:ty => $put:ident, $get:ident;)*) => {$(
        impl Serialize for $t {
            #[inline]
            fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
                s.$put(*self)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            #[inline]
            fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
                d.$get()
            }
        }
    )*};
}

primitive_impls! {
    bool => put_bool, get_bool;
    u8 => put_u8, get_u8;
    u32 => put_u32, get_u32;
    u64 => put_u64, get_u64;
    i64 => put_i64, get_i64;
    f32 => put_f32, get_f32;
    f64 => put_f64, get_f64;
}

impl Serialize for usize {
    #[inline]
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        s.put_u64(*self as u64)
    }
}

impl<'de> Deserialize<'de> for usize {
    #[inline]
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        Ok(d.get_u64()? as usize)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        s.put_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        s.put_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        d.get_string()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        let len = d.get_seq_len()?;
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(T::deserialize(d)?);
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        s.begin_seq(self.len())?;
        for v in self {
            v.serialize(s)?;
        }
        Ok(())
    }
}

impl<T: Serialize> Serialize for Box<[T]> {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        self.as_ref().serialize(s)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<[T]> {
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        Ok(Vec::<T>::deserialize(d)?.into_boxed_slice())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        match self {
            None => s.put_u8(0),
            Some(v) => {
                s.put_u8(1)?;
                v.serialize(s)
            }
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        match d.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::deserialize(d)?)),
            _ => Err(d.invalid("Option tag")),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+);)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
                $(self.$n.serialize(s)?;)+
                Ok(())
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<De: Deserializer<'de>>(d: &mut De) -> Result<Self, De::Error> {
                Ok(($($t::deserialize(d)?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (0 A, 1 B);
    (0 A, 1 B, 2 C);
    (0 A, 1 B, 2 C, 3 D);
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        (**self).serialize(s)
    }
}

// Shared pointers are transparent on the wire: an `Arc<T>` encodes exactly
// as `T` (real serde behaves the same), so putting a bundle field behind
// `Arc` for in-memory sharing never changes the artifact format.
impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, s: &mut S) -> Result<(), S::Error> {
        (**self).serialize(s)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::sync::Arc<T> {
    fn deserialize<D: Deserializer<'de>>(d: &mut D) -> Result<Self, D::Error> {
        Ok(std::sync::Arc::new(T::deserialize(d)?))
    }
}
