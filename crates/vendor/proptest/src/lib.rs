//! Offline stand-in for `proptest`: seeded random-input testing with the
//! proptest API shape ([`Strategy`], [`collection::vec`], the [`proptest!`]
//! macro, `prop_assert!` / `prop_assert_eq!`).
//!
//! Differences from the real crate: no shrinking (a failing case panics with
//! the case number; re-running reproduces it deterministically because every
//! test function derives its RNG stream from its own name), and strategies
//! are plain value generators rather than value trees.
//!
//! Case count defaults to 64 and can be overridden with `PROPTEST_CASES`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Test-case RNG handed to strategies.
pub type TestRng = StdRng;

/// A generator of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($t:ident . $idx:tt),+);)*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

pub mod collection {
    //! Collection strategies.
    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` of values from `element`, with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.random_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Number of cases each property runs (`PROPTEST_CASES` env override).
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Construct the RNG for one test case (used by the [`proptest!`]
/// expansion, which cannot assume `rand` is a dependency at the call site).
pub fn new_rng(seed: u64) -> TestRng {
    StdRng::seed_from_u64(seed)
}

/// Stable 64-bit FNV-1a over a test name, used to give every property its
/// own deterministic RNG stream.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub mod prelude {
    //! One-import surface mirroring `proptest::prelude`.
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, Strategy, TestRng};
}

/// Assert inside a property; panics with the failing case's values visible
/// in the message (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that draws inputs from the strategies for
/// [`case_count`] seeded cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::case_count();
            let base = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cases {
                let mut proptest_rng =
                    $crate::new_rng(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut proptest_rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_seed() {
        let mut a: TestRng = rand::SeedableRng::seed_from_u64(9);
        let mut b: TestRng = rand::SeedableRng::seed_from_u64(9);
        let s = collection::vec(0u32..100, 1..20);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn map_applies_function() {
        let mut rng: TestRng = rand::SeedableRng::seed_from_u64(1);
        let s = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    proptest! {
        /// The macro itself: ranges respect bounds, tuples compose.
        #[test]
        fn macro_generates_in_bounds(x in 3u32..17, pair in (0usize..4, 1u32..=5)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(pair.0 < 4);
            prop_assert!((1..=5).contains(&pair.1));
        }
    }
}
