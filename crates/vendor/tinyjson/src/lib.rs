//! Offline stand-in for a `serde_json` subset: a hand-rolled JSON value
//! model, parser, and encoder with no dependencies.
//!
//! The API mirrors the slice of `serde_json` the workspace consumes —
//! [`Value`] with `as_*` accessors and `Index` by key/position,
//! [`from_str`], [`to_string`], and a [`json!`]-shaped [`obj!`]/[`arr!`]
//! builder pair — so the crate can be swapped for the real one when
//! registry access exists.
//!
//! Guarantees the HTTP layer leans on:
//!
//! * **Deterministic encoding** — object keys serialize in insertion
//!   order, numbers that are mathematically integral within `i64`/`u64`
//!   range print without a fractional part, and no whitespace is emitted;
//!   encoding the same value twice yields identical bytes.
//! * **Strict parsing** — trailing garbage, unterminated strings, bad
//!   escapes, lone surrogates, leading zeros, and over-deep nesting
//!   (> [`MAX_DEPTH`]) are all errors, never panics. The parser is fuzzed
//!   through `tests/http_protocol.rs`.

use std::fmt;

/// Maximum nesting depth the parser accepts (arrays + objects combined).
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, the serde_json `f64` model).
    Number(f64),
    /// A string (escapes already resolved).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order (first write of a key wins position;
    /// duplicate keys keep the latest value, like serde_json).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// `Some(bool)` when the value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `Some(f64)` when the value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// `Some(u64)` when the value is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// `Some(i64)` when the value is an integral number in `i64` range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n)
                if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// `Some(&str)` when the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// `Some(&[Value])` when the value is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// `Some(entries)` when the value is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Insert or replace a key on an object; panics on non-objects (the
    /// builder macros use it on freshly made objects only).
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let Value::Object(o) = self else {
            panic!("insert on non-object JSON value");
        };
        let key = key.into();
        match o.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = value,
            None => o.push((key, value)),
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Like `serde_json::Value`: missing keys index to `Null`.
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Number(v as f64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Number(v as f64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Number(v as f64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Number(v as f64)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Build a [`Value::Object`] literal: `obj! { "k" => v, ... }`.
#[macro_export]
macro_rules! obj {
    ($($key:expr => $val:expr),* $(,)?) => {{
        #[allow(unused_mut)]
        let mut o = $crate::Value::Object(Vec::new());
        $(o.insert($key, $crate::Value::from($val));)*
        o
    }};
}

/// Build a [`Value::Array`] literal: `arr![v1, v2, ...]`.
#[macro_export]
macro_rules! arr {
    ($($val:expr),* $(,)?) => {
        $crate::Value::Array(vec![$($crate::Value::from($val)),*])
    };
}

/// Why a document failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset the error was detected at.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse one complete JSON document; trailing non-whitespace is an error.
pub fn from_str(s: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Encode a value as compact JSON (no whitespace, deterministic bytes).
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, &mut out);
    out
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&to_string(self))
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(a) => {
            out.push('[');
            for (k, item) in a.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(o) => {
            out.push('{');
            for (k, (key, val)) in o.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    use std::fmt::Write;
    if !n.is_finite() {
        // JSON has no NaN/Inf; serde_json refuses them at a different
        // layer. Encode as null so the encoder is total.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, lit: &'static [u8], v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal(b"null", Value::Null),
            Some(b't') => self.literal(b"true", Value::Bool(true)),
            Some(b'f') => self.literal(b"false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.pos += 1; // '{'
        let mut entries: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            match entries.iter_mut().find(|(k, _)| *k == key) {
                Some(slot) => slot.1 = val,
                None => entries.push((key, val)),
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => c - b'0',
                Some(c @ b'a'..=b'f') => c - b'a' + 10,
                Some(c @ b'A'..=b'F') => c - b'A' + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = (v << 4) | d as u16;
            self.pos += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp =
                                    0x10000 + ((hi as u32 - 0xD800) << 10) + (lo as u32 - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone surrogate"));
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing at
                    // the next char boundary is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: no leading zeros.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err("leading zero"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        for doc in [
            "null",
            "true",
            "false",
            "0",
            "-7",
            "3.25",
            "1e3",
            "\"hi\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":1,\"b\":[true,null]}",
        ] {
            let v = from_str(doc).unwrap();
            let enc = to_string(&v);
            assert_eq!(from_str(&enc).unwrap(), v, "{doc}");
        }
    }

    #[test]
    fn encoding_is_deterministic_and_compact() {
        let v = obj! {
            "user" => 3u32,
            "items" => vec![5u32, 2, 9],
            "rate" => 0.5,
        };
        let s = to_string(&v);
        assert_eq!(s, "{\"user\":3,\"items\":[5,2,9],\"rate\":0.5}");
        assert_eq!(to_string(&from_str(&s).unwrap()), s);
    }

    #[test]
    fn integral_floats_print_without_fraction() {
        assert_eq!(to_string(&Value::Number(4.0)), "4");
        assert_eq!(to_string(&Value::Number(-4.0)), "-4");
        assert_eq!(to_string(&Value::Number(4.5)), "4.5");
        assert_eq!(to_string(&Value::Number(f64::NAN)), "null");
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = from_str("\"a\\\"b\\\\c\\n\\u0041\\uD83D\\uDE00\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\nA😀");
        let enc = to_string(&v);
        assert_eq!(from_str(&enc).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "01",
            "1.",
            "1e",
            "--1",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\uD800\"",
            "tru",
            "nulll",
            "1 2",
            "[1] []",
            "\u{1}",
        ] {
            assert!(from_str(doc).is_err(), "{doc:?} must be rejected");
        }
    }

    #[test]
    fn nesting_depth_is_bounded() {
        let deep_ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(from_str(&deep_ok).is_ok());
        let deep_bad = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 2),
            "]".repeat(MAX_DEPTH + 2)
        );
        assert_eq!(from_str(&deep_bad).unwrap_err().message, "nesting too deep");
    }

    #[test]
    fn accessors_and_indexing_match_serde_json_shapes() {
        let v = from_str("{\"n\":10,\"items\":[4,5],\"name\":\"pop\",\"ok\":true}").unwrap();
        assert_eq!(v["n"].as_u64(), Some(10));
        assert_eq!(v["items"][1].as_u64(), Some(5));
        assert_eq!(v["items"][9], Value::Null);
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(v["name"].as_str(), Some("pop"));
        assert_eq!(v["ok"].as_bool(), Some(true));
        assert_eq!(v.get("n").and_then(Value::as_i64), Some(10));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn duplicate_keys_keep_latest_value() {
        let v = from_str("{\"a\":1,\"a\":2}").unwrap();
        assert_eq!(v["a"].as_u64(), Some(2));
        assert_eq!(v.as_object().unwrap().len(), 1);
    }
}
