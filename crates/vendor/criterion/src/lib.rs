//! Offline stand-in for `criterion`: a wall-clock micro-benchmark harness
//! with the criterion API shape (`criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`, `Bencher::iter`).
//!
//! Each sample times one invocation of the routine; the harness reports
//! mean / p50 / p99 per benchmark. Set `GANC_BENCH_FAST=1` to cap warm-up
//! and measurement at a few milliseconds (used to smoke-test bench targets
//! without paying full measurement time).

use std::time::{Duration, Instant};

/// Re-export for call sites that import `black_box` from criterion.
pub use std::hint::black_box;

/// Summary statistics of one benchmark, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Mean of the collected samples.
    pub mean_ns: f64,
    /// Median (p50).
    pub p50_ns: f64,
    /// 99th percentile.
    pub p99_ns: f64,
    /// Number of samples measured.
    pub samples: usize,
}

/// Percentile by nearest-rank over a sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn summarize(mut samples: Vec<f64>) -> Summary {
    samples.sort_by(f64::total_cmp);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    Summary {
        mean_ns: mean,
        p50_ns: percentile(&samples, 50.0),
        p99_ns: percentile(&samples, 99.0),
        samples: samples.len(),
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn fast_mode() -> bool {
    std::env::var_os("GANC_BENCH_FAST").is_some_and(|v| v != "0")
}

/// Times individual executions of a routine.
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Run `f` once and record its wall-clock duration as one sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed();
        black_box(out);
        self.samples.push(elapsed.as_nanos() as f64);
    }
}

#[derive(Debug, Clone, Copy)]
struct Config {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Config {
    fn effective(&self) -> Config {
        if fast_mode() {
            Config {
                sample_size: self.sample_size.min(10),
                warm_up: Duration::from_millis(1),
                measurement: Duration::from_millis(10),
            }
        } else {
            *self
        }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config {
            sample_size: 100,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(3),
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, cfg: &Config, mut f: F) -> Summary {
    let cfg = cfg.effective();
    let mut b = Bencher {
        samples: Vec::new(),
    };
    // Warm-up: run and discard.
    let warm_start = Instant::now();
    while warm_start.elapsed() < cfg.warm_up {
        f(&mut b);
        if b.samples.is_empty() {
            break; // routine never called iter; avoid spinning forever
        }
    }
    b.samples.clear();
    let measure_start = Instant::now();
    while b.samples.len() < cfg.sample_size && measure_start.elapsed() < cfg.measurement {
        f(&mut b);
        if b.samples.is_empty() {
            break;
        }
    }
    if b.samples.is_empty() {
        // Routine never called Bencher::iter — record a zero sample so the
        // summary is well-formed instead of NaN.
        b.samples.push(0.0);
    }
    let summary = summarize(b.samples);
    println!(
        "bench {name:<50} mean {:>10}  p50 {:>10}  p99 {:>10}  ({} samples)",
        format_ns(summary.mean_ns),
        format_ns(summary.p50_ns),
        format_ns(summary.p99_ns),
        summary.samples
    );
    summary
}

/// A named group of benchmarks sharing measurement configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    cfg: Config,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Target number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up = d;
        self
    }

    /// Measurement time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement = d;
        self
    }

    /// Measure one routine under this group's configuration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, &self.cfg, f);
        self
    }

    /// End the group (kept for API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            cfg: Config::default(),
            _criterion: self,
        }
    }

    /// Measure one routine under default configuration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_bench(&id.into(), &Config::default(), f);
        self
    }
}

/// Bundle benchmark functions into a callable group, mirroring criterion's
/// simple (non-configured) form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_percentiles_are_ordered() {
        let s = summarize((1..=100).map(|x| x as f64).collect());
        assert_eq!(s.samples, 100);
        assert!(s.p50_ns <= s.p99_ns);
        assert!((s.mean_ns - 50.5).abs() < 1e-9);
    }

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        b.iter(|| 1 + 1);
        assert_eq!(b.samples.len(), 1);
        assert!(b.samples[0] >= 0.0);
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2_000_000_000.0).ends_with('s'));
    }
}
