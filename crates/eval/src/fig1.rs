//! Figure 1: average popularity of rated items vs (normalized binned) user
//! activity, one series per dataset. The paper's observation: the curve
//! falls — active users consume relatively less popular items.

use crate::context::{DataBundle, ExpConfig};
use crate::tables::TextTable;
use ganc_dataset::stats::activity_popularity_curve;

/// Number of activity bins plotted (the paper bins the normalized counts).
pub const BINS: usize = 10;

/// Render the Figure 1 series for all five datasets.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = String::from("Figure 1 — avg popularity of rated items vs user activity\n");
    for bundle in DataBundle::all(cfg) {
        let curve = activity_popularity_curve(&bundle.split.train, BINS);
        let mut t = TextTable::new(&["activity bin", "mean avg popularity", "users"]);
        for point in &curve {
            t.row(vec![
                format!("{:.2}", point.activity),
                format!("{:.1}", point.mean_avg_popularity),
                point.users.to_string(),
            ]);
        }
        let first = curve.first().map(|p| p.mean_avg_popularity).unwrap_or(0.0);
        let last = curve.last().map(|p| p.mean_avg_popularity).unwrap_or(0.0);
        out.push_str(&format!(
            "\n({}) — slope check: first bin {:.1} → last bin {:.1} ({})\n{}",
            bundle.profile.name,
            first,
            last,
            if first > last {
                "falls, as in the paper"
            } else {
                "NOT falling"
            },
            t.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn all_datasets_show_falling_curves() {
        let cfg = ExpConfig {
            scale: Scale::Smoke,
            seed: 5,
            runs: 1,
            threads: 2,
        };
        let out = run(&cfg);
        assert_eq!(out.matches("falls, as in the paper").count(), 5, "{out}");
    }
}
