//! Run the full experiment suite (every table and figure) and print one
//! combined report — the source of EXPERIMENTS.md's measured blocks.
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ganc_eval::parse_cli(&args);
    let t0 = std::time::Instant::now();
    let section = |name: &str, body: String| {
        println!("================================================================");
        println!("{name}  [elapsed {:.0?}]", t0.elapsed());
        println!("================================================================");
        println!("{body}");
    };
    section("Table II", ganc_eval::table2::run(&cfg));
    section("Figure 1", ganc_eval::fig1::run(&cfg));
    section("Figure 2", ganc_eval::fig2::run(&cfg));
    section("Figure 3", ganc_eval::fig3_4::run(&cfg, "ml-1m"));
    section("Figure 4", ganc_eval::fig3_4::run(&cfg, "mt-200k"));
    section("Figure 5", ganc_eval::fig5::run(&cfg));
    section("Table IV", ganc_eval::table4::run(&cfg));
    section("Figure 6", ganc_eval::fig6::run(&cfg));
    section("Table V", ganc_eval::table5::run(&cfg));
    section("Figure 7", ganc_eval::fig7_8::run(&cfg, "ml-100k"));
    section("Figure 8", ganc_eval::fig7_8::run(&cfg, "ml-1m"));
    println!("total wall time: {:.1?}", t0.elapsed());
}
