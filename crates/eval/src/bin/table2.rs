//! Regenerate Table II (dataset statistics).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ganc_eval::parse_cli(&args);
    println!("{}", ganc_eval::table2::run(&cfg));
}
