//! Regenerate Table IV (re-ranking comparison with mean ranks).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ganc_eval::parse_cli(&args);
    println!("{}", ganc_eval::table4::run(&cfg));
}
