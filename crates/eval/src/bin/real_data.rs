//! Run the GANC pipeline on a **real** ratings file (MovieLens `u.data`,
//! `ratings.dat`, or CSV) instead of the synthetic stand-ins.
//!
//! ```text
//! cargo run --release -p ganc-eval --bin real_data -- \
//!     --path /data/ml-100k/u.data [--kappa 0.5] [--tau 5] [--n 5] \
//!     [--scale-max 5] [--sample 500] [--seed 7]
//! ```
//!
//! Prints a Table IV-style comparison of the base RSVD ranking against
//! GANC(RSVD, θ^G, Dyn) and GANC(Pop, θ^G, Dyn).

use ganc_core::{AccuracyMode, CoverageKind, GancBuilder};
use ganc_dataset::dataset::RatingScale;
use ganc_dataset::io::{filter_min_ratings, load_path};
use ganc_metrics::{evaluate_topn, EvalContext, TopN};
use ganc_preference::GeneralizedConfig;
use ganc_recommender::pop::MostPopular;
use ganc_recommender::rsvd::{Rsvd, RsvdConfig};
use ganc_recommender::topn::generate_topn_lists;
use std::path::PathBuf;

struct Args {
    path: PathBuf,
    kappa: f64,
    tau: u32,
    n: usize,
    scale_max: f32,
    sample: usize,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        path: PathBuf::new(),
        kappa: 0.5,
        tau: 5,
        n: 5,
        scale_max: 5.0,
        sample: 500,
        seed: 7,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut k = 0;
    let usage = || -> ! {
        eprintln!(
            "usage: real_data --path FILE [--kappa F] [--tau N] [--n N] [--scale-max F] [--sample N] [--seed N]"
        );
        std::process::exit(2)
    };
    while k < argv.len() {
        macro_rules! next {
            () => {{
                k += 1;
                argv.get(k).unwrap_or_else(|| usage())
            }};
        }
        match argv[k].as_str() {
            "--path" => args.path = PathBuf::from(next!()),
            "--kappa" => args.kappa = next!().parse().unwrap_or_else(|_| usage()),
            "--tau" => args.tau = next!().parse().unwrap_or_else(|_| usage()),
            "--n" => args.n = next!().parse().unwrap_or_else(|_| usage()),
            "--scale-max" => args.scale_max = next!().parse().unwrap_or_else(|_| usage()),
            "--sample" => args.sample = next!().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = next!().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        k += 1;
    }
    if args.path.as_os_str().is_empty() {
        usage();
    }
    args
}

fn main() {
    let args = parse_args();
    let scale = RatingScale {
        min: if args.scale_max > 5.0 { 0.0 } else { 0.5 },
        max: args.scale_max,
        step: 0.5,
    };
    let (raw, _maps) = match load_path(&args.path, scale) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("failed to load {}: {e}", args.path.display());
            std::process::exit(1);
        }
    };
    let filtered = filter_min_ratings(&raw, args.tau).expect("filter");
    let data = if args.scale_max > 5.0 {
        filtered.mapped_to_one_five()
    } else {
        filtered
    };
    println!(
        "loaded {}: {} users, {} items, {} ratings (d = {:.2}%)",
        args.path.display(),
        data.n_users(),
        data.n_items(),
        data.n_ratings(),
        data.density_percent()
    );
    let split = data.split_per_user(args.kappa, args.seed).expect("split");
    let train = &split.train;
    let ctx = EvalContext::new(train, &split.test);
    let theta = GeneralizedConfig::default().estimate(train);

    let rsvd = Rsvd::train(train, RsvdConfig::default());
    println!("RSVD test RMSE: {:.4}", rsvd.rmse(&split.test));
    let pop = MostPopular::fit(train);

    let mut rows: Vec<(String, TopN)> = vec![
        (
            "RSVD".into(),
            TopN::new(args.n, generate_topn_lists(&rsvd, train, args.n, 4)),
        ),
        (
            "Pop".into(),
            TopN::new(args.n, generate_topn_lists(&pop, train, args.n, 4)),
        ),
    ];
    let ganc_rsvd = GancBuilder::new(args.n)
        .coverage(CoverageKind::Dynamic)
        .sample_size(args.sample)
        .build_topn(&rsvd, &theta, train, args.seed)
        .into_lists();
    rows.push(("GANC(RSVD, θG, Dyn)".into(), TopN::new(args.n, ganc_rsvd)));
    let ganc_pop = GancBuilder::new(args.n)
        .coverage(CoverageKind::Dynamic)
        .accuracy_mode(AccuracyMode::TopNIndicator)
        .sample_size(args.sample)
        .build_topn(&pop, &theta, train, args.seed)
        .into_lists();
    rows.push(("GANC(Pop, θG, Dyn)".into(), TopN::new(args.n, ganc_pop)));

    println!(
        "\n{:<22} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "model",
        format!("F@{}", args.n),
        "SRec",
        "LTAcc",
        "Cov",
        "Gini"
    );
    for (name, topn) in &rows {
        let m = evaluate_topn(topn, &ctx);
        println!(
            "{name:<22} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
            m.f_measure, m.strat_recall, m.lt_accuracy, m.coverage, m.gini
        );
    }
}
