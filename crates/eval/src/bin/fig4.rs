//! Regenerate Figure 4 (OSLG sample-size sweep on MT-200K).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ganc_eval::parse_cli(&args);
    println!("{}", ganc_eval::fig3_4::run(&cfg, "mt-200k"));
}
