//! Regenerate Figure 5 (GANC × θ-model × ARec grid on ML-1M).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ganc_eval::parse_cli(&args);
    println!("{}", ganc_eval::fig5::run(&cfg));
}
