//! Regenerate Table V (RSVD hyper-parameter study).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ganc_eval::parse_cli(&args);
    println!("{}", ganc_eval::table5::run(&cfg));
}
