//! Regenerate Figure 3 (OSLG sample-size sweep on ML-1M).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ganc_eval::parse_cli(&args);
    println!("{}", ganc_eval::fig3_4::run(&cfg, "ml-1m"));
}
