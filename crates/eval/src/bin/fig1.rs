//! Regenerate Figure 1 (avg popularity vs user activity).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ganc_eval::parse_cli(&args);
    println!("{}", ganc_eval::fig1::run(&cfg));
}
