//! Regenerate Figure 2 (θ-distribution histograms).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ganc_eval::parse_cli(&args);
    println!("{}", ganc_eval::fig2::run(&cfg));
}
