//! Regenerate Figure 6 (accuracy vs coverage vs novelty map).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ganc_eval::parse_cli(&args);
    println!("{}", ganc_eval::fig6::run(&cfg));
}
