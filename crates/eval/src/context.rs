//! Shared experiment plumbing: scales, configs, and the per-dataset bundle
//! (generated data + split + evaluation context).

use ganc_dataset::synth::DatasetProfile;
use ganc_dataset::{Dataset, TrainTest};
use ganc_metrics::EvalContext;

/// How big the synthetic datasets are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~8× downscaled profiles — minutes for the full suite; used to verify
    /// shapes quickly and by CI-style runs.
    Smoke,
    /// The calibrated Table II scales (ML-10M and Netflix already
    /// downscaled as documented in DESIGN.md §2).
    Paper,
}

/// Common configuration of one experiment run.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Dataset scale.
    pub scale: Scale,
    /// Master seed; every derived RNG mixes a role-specific constant.
    pub seed: u64,
    /// Number of repetitions averaged for randomized variants (the paper
    /// uses 10; the default here is 3 to fit a laptop budget — configurable
    /// via `--runs`).
    pub runs: usize,
    /// Worker threads.
    pub threads: usize,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale: Scale::Smoke,
            seed: 0x6A7C,
            runs: 3,
            threads: std::thread::available_parallelism().map_or(4, |p| p.get()),
        }
    }
}

impl ExpConfig {
    /// The five paper dataset profiles at the configured scale.
    pub fn profiles(&self) -> Vec<DatasetProfile> {
        DatasetProfile::all_paper()
            .into_iter()
            .map(|p| self.scaled(p))
            .collect()
    }

    /// One profile by its Table II short name (`ml-100k`, `ml-1m`,
    /// `ml-10m`, `mt-200k`, `netflix`).
    pub fn profile(&self, short: &str) -> DatasetProfile {
        let p = match short {
            "ml-100k" => DatasetProfile::ml_100k(),
            "ml-1m" => DatasetProfile::ml_1m(),
            "ml-10m" => DatasetProfile::ml_10m(),
            "mt-200k" => DatasetProfile::mt_200k(),
            "netflix" => DatasetProfile::netflix(),
            other => panic!("unknown dataset short name {other:?}"),
        };
        self.scaled(p)
    }

    fn scaled(&self, mut p: DatasetProfile) -> DatasetProfile {
        if self.scale == Scale::Smoke {
            p.n_users = (p.n_users / 8).max(120);
            p.n_items = (p.n_items / 8).max(80);
            p.target_ratings = (p.target_ratings / 64).max(3_000);
            p.name = format!("{}-smoke", p.name);
        }
        p
    }
}

/// A generated dataset with its split and shared evaluation context.
pub struct DataBundle {
    /// Table II short name (`ml-1m`, ...).
    pub short: String,
    /// The generator profile used.
    pub profile: DatasetProfile,
    /// The generated dataset, already mapped onto the 1–5 scale where the
    /// paper does so (MT-200K).
    pub data: Dataset,
    /// Per-user κ split.
    pub split: TrainTest,
    /// Precomputed metric context (relevance sets, popularity, long tail).
    pub ctx: EvalContext,
}

impl DataBundle {
    /// Generate and split one dataset deterministically from the config.
    pub fn prepare(cfg: &ExpConfig, short: &str) -> DataBundle {
        let profile = cfg.profile(short);
        let raw = profile.generate(cfg.seed ^ 0xDA7A);
        // The paper maps MT-200K's 0–10 ratings onto [1,5] before use.
        let data = if profile.scale.max > 5.0 {
            raw.mapped_to_one_five()
        } else {
            raw
        };
        let split = data
            .split_per_user(profile.kappa, cfg.seed ^ 0x5817)
            .expect("profiles always produce splittable data");
        let ctx = EvalContext::new(&split.train, &split.test);
        DataBundle {
            short: short.to_string(),
            profile,
            data,
            split,
            ctx,
        }
    }

    /// All five paper datasets, in Table II order.
    pub fn all(cfg: &ExpConfig) -> Vec<DataBundle> {
        ["ml-100k", "ml-1m", "ml-10m", "mt-200k", "netflix"]
            .iter()
            .map(|s| DataBundle::prepare(cfg, s))
            .collect()
    }

    /// Whether the paper treats this dataset as sparse (plugs in a
    /// different accuracy recommender, §V-B).
    pub fn is_sparse(&self) -> bool {
        self.short == "mt-200k"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke() -> ExpConfig {
        ExpConfig {
            scale: Scale::Smoke,
            seed: 1,
            runs: 1,
            threads: 2,
        }
    }

    #[test]
    fn smoke_profiles_shrink() {
        let cfg = smoke();
        let p = cfg.profile("ml-1m");
        assert!(p.n_users < DatasetProfile::ml_1m().n_users);
        assert!(p.name.ends_with("-smoke"));
    }

    #[test]
    fn bundle_maps_mt_to_one_five() {
        let cfg = smoke();
        let b = DataBundle::prepare(&cfg, "mt-200k");
        assert!(b.data.scale().max <= 5.0);
        assert!(b.is_sparse());
        // every rating on [1,5]
        assert!(b
            .data
            .ratings()
            .iter()
            .all(|r| (1.0..=5.0).contains(&r.value)));
    }

    #[test]
    fn bundle_is_deterministic() {
        let cfg = smoke();
        let a = DataBundle::prepare(&cfg, "ml-100k");
        let b = DataBundle::prepare(&cfg, "ml-100k");
        assert_eq!(a.data.n_ratings(), b.data.n_ratings());
        assert_eq!(a.split.train.nnz(), b.split.train.nnz());
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_profile_panics() {
        smoke().profile("ml-20m");
    }
}
