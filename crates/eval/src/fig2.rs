//! Figure 2: histograms of the long-tail preference models θ^A, θ^N, θ^T,
//! θ^G per dataset. The paper's observations: θ^A and θ^N are right-skewed
//! (sparsity + popularity bias), θ^T and θ^G are more centered, θ^G with
//! the larger mean and variance.

use crate::context::{DataBundle, ExpConfig};
use crate::tables::TextTable;
use ganc_dataset::stats::LongTail;
use ganc_preference::simple::{histogram, theta_activity, theta_normalized};
use ganc_preference::tfidf::theta_tfidf;
use ganc_preference::GeneralizedConfig;

/// Histogram bins over `[0, 1]`.
pub const BINS: usize = 10;

/// Summary moments of one θ vector.
fn moments(theta: &[f64]) -> (f64, f64) {
    let n = theta.len().max(1) as f64;
    let mean = theta.iter().sum::<f64>() / n;
    let var = theta.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Render the Figure 2 histograms for all datasets.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = String::from("Figure 2 — distribution of long-tail preference models\n");
    for bundle in DataBundle::all(cfg) {
        let train = &bundle.split.train;
        let lt = LongTail::pareto(train);
        let thetas = [
            ("θA", theta_activity(train)),
            ("θN", theta_normalized(train, &lt)),
            ("θT", theta_tfidf(train)),
            ("θG", GeneralizedConfig::default().estimate(train)),
        ];
        let mut t = TextTable::new(&[
            "model", "mean", "std", "h0", "h1", "h2", "h3", "h4", "h5", "h6", "h7", "h8", "h9",
        ]);
        for (label, theta) in &thetas {
            let (mean, std) = moments(theta);
            let h = histogram(theta, BINS);
            let mut cells = vec![label.to_string(), format!("{mean:.3}"), format!("{std:.3}")];
            cells.extend(h.iter().map(|c| c.to_string()));
            t.row(cells);
        }
        let (mean_n, _) = moments(&thetas[1].1);
        let (mean_g, _) = moments(&thetas[3].1);
        out.push_str(&format!(
            "\n({}) — mean θN {:.3} vs mean θG {:.3} ({})\n{}",
            bundle.profile.name,
            mean_n,
            mean_g,
            if mean_g > mean_n {
                "θG larger mean, as in the paper"
            } else {
                "unexpected ordering"
            },
            t.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn theta_g_has_larger_mean_everywhere() {
        let cfg = ExpConfig {
            scale: Scale::Smoke,
            seed: 6,
            runs: 1,
            threads: 2,
        };
        let out = run(&cfg);
        assert_eq!(
            out.matches("θG larger mean, as in the paper").count(),
            5,
            "{out}"
        );
    }
}
