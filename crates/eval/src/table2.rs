//! Table II: dataset statistics (`|D|`, `|U|`, `|I|`, `d%`, `L%`, `κ`, `τ`)
//! for the five calibrated synthetic datasets.

use crate::context::{DataBundle, ExpConfig};
use crate::tables::TextTable;
use ganc_dataset::stats::TableTwoRow;

/// Render Table II.
pub fn run(cfg: &ExpConfig) -> String {
    let mut t = TextTable::new(&["Dataset", "|D|", "|U|", "|I|", "d%", "L%", "κ", "τ"]);
    for bundle in DataBundle::all(cfg) {
        let row = TableTwoRow::compute(
            bundle.profile.name.as_str(),
            &bundle.data,
            &bundle.split,
            bundle.profile.tau,
        );
        t.row(vec![
            row.name,
            row.n_ratings.to_string(),
            row.n_users.to_string(),
            row.n_items.to_string(),
            format!("{:.2}", row.density_percent),
            format!("{:.2}", row.long_tail_percent),
            format!("{:.1}", row.kappa),
            row.tau.to_string(),
        ]);
    }
    format!("Table II — dataset statistics\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn renders_five_rows_with_plausible_stats() {
        let cfg = ExpConfig {
            scale: Scale::Smoke,
            seed: 2,
            runs: 1,
            threads: 2,
        };
        let out = run(&cfg);
        assert_eq!(out.lines().count(), 2 + 1 + 5); // title + header + rule + rows
        assert!(out.contains("ml-1m-sim"));
        assert!(out.contains("netflix-sim"));
    }
}
