//! Table IV: top-5 re-ranking comparison over RSVD on all five datasets.
//!
//! Nine algorithms: RSVD itself, 5D(RSVD), 5D(RSVD, A, RR), RBT(RSVD, Pop),
//! RBT(RSVD, Avg), PRA(RSVD, 10), PRA(RSVD, 20), GANC(RSVD, θ^T, Dyn),
//! GANC(RSVD, θ^G, Dyn). Metrics: F@5, StratRecall@5, LTAccuracy@5,
//! Coverage@5, Gini@5, plus the per-metric rank in parentheses and the mean
//! rank in the last column (as printed in the paper).

use crate::context::{DataBundle, ExpConfig, Scale};
use crate::models::{ganc_runs, train_rsvd};
use crate::tables::{f4, table4_ranks, TextTable};
use ganc_core::{AccuracyMode, CoverageKind};
use ganc_metrics::{evaluate_topn, TopN, TopNMetrics};
use ganc_preference::tfidf::theta_tfidf;
use ganc_preference::GeneralizedConfig;
use ganc_recommender::topn::generate_topn_lists;
use ganc_rerank::five_d::FiveD;
use ganc_rerank::pra::Pra;
use ganc_rerank::rbt::{Rbt, RbtCriterion};
use ganc_rerank::{rerank_all, Reranker};

/// One evaluated algorithm of the comparison.
struct Row {
    name: String,
    metrics: TopNMetrics,
}

/// `T_H` per the paper: 0 on ML-10M and Netflix, 1 elsewhere.
fn th_for(short: &str) -> usize {
    match short {
        "ml-10m" | "netflix" => 0,
        _ => 1,
    }
}

/// Evaluate all nine algorithms on one dataset.
fn evaluate_dataset(cfg: &ExpConfig, bundle: &DataBundle) -> Vec<Row> {
    const N: usize = 5;
    let train = &bundle.split.train;
    let rsvd = train_rsvd(bundle, cfg);
    let th = th_for(&bundle.short);
    let mut rows: Vec<Row> = Vec::new();
    // 1. Pure RSVD ranking.
    let pure = TopN::new(N, generate_topn_lists(&rsvd, train, N, cfg.threads));
    rows.push(Row {
        name: "RSVD".into(),
        metrics: evaluate_topn(&pure, &bundle.ctx),
    });
    // 2-7. The re-ranking baselines.
    let rerankers: Vec<Box<dyn Reranker>> = vec![
        Box::new(FiveD::new(train, "RSVD")),
        Box::new(FiveD::with_options(train, "RSVD", true, true)),
        Box::new(Rbt::with_params(
            train,
            RbtCriterion::Popularity,
            "RSVD",
            4.5,
            th,
        )),
        Box::new(Rbt::with_params(
            train,
            RbtCriterion::AverageRating,
            "RSVD",
            4.5,
            th,
        )),
        Box::new(Pra::new(train, "RSVD", 10)),
        Box::new(Pra::new(train, "RSVD", 20)),
    ];
    for rr in &rerankers {
        let lists = rerank_all(rr.as_ref(), &rsvd, train, N, cfg.threads);
        let topn = TopN::new(N, lists);
        rows.push(Row {
            name: rr.name(),
            metrics: evaluate_topn(&topn, &bundle.ctx),
        });
    }
    // 8-9. GANC with the two learned preference models.
    let sample_size = match cfg.scale {
        Scale::Smoke => 60,
        Scale::Paper => 500,
    };
    for (label, theta) in [
        ("θT", theta_tfidf(train)),
        ("θG", GeneralizedConfig::default().estimate(train)),
    ] {
        let runs = ganc_runs(
            &rsvd,
            AccuracyMode::Normalized,
            &theta,
            bundle,
            N,
            CoverageKind::Dynamic,
            sample_size,
            cfg,
        );
        let per_run: Vec<TopNMetrics> =
            runs.iter().map(|r| evaluate_topn(r, &bundle.ctx)).collect();
        let k = per_run.len().max(1) as f64;
        let mut m = TopNMetrics {
            precision: 0.0,
            recall: 0.0,
            f_measure: 0.0,
            strat_recall: 0.0,
            lt_accuracy: 0.0,
            coverage: 0.0,
            gini: 0.0,
            ndcg: 0.0,
        };
        for r in &per_run {
            m.precision += r.precision / k;
            m.recall += r.recall / k;
            m.f_measure += r.f_measure / k;
            m.strat_recall += r.strat_recall / k;
            m.lt_accuracy += r.lt_accuracy / k;
            m.coverage += r.coverage / k;
            m.gini += r.gini / k;
            m.ndcg += r.ndcg / k;
        }
        rows.push(Row {
            name: format!("GANC(RSVD, {label}, Dyn)"),
            metrics: m,
        });
    }
    rows
}

/// Render Table IV for every dataset.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = String::from(
        "Table IV — top-5 re-ranking of RSVD: (F)measure, (S)tratRecall, (L)TAccuracy, (C)overage, (G)ini; rank in parens\n",
    );
    for bundle in DataBundle::all(cfg) {
        let rows = evaluate_dataset(cfg, &bundle);
        let metric_rows: Vec<TopNMetrics> = rows.iter().map(|r| r.metrics).collect();
        let ranked = table4_ranks(&metric_rows);
        let mut t = TextTable::new(&["Alg", "F@5", "S@5", "L@5", "C@5", "G@5", "Score"]);
        let mut best_mean = f64::INFINITY;
        let mut best_name = String::new();
        for (row, (ranks, mean_rank)) in rows.iter().zip(&ranked) {
            let cols = row.metrics.table4_columns();
            let mut cells = vec![row.name.clone()];
            for (v, r) in cols.iter().zip(ranks) {
                cells.push(format!("{} ({r})", f4(*v)));
            }
            cells.push(format!("{mean_rank:.1}"));
            t.row(cells);
            if *mean_rank < best_mean {
                best_mean = *mean_rank;
                best_name = row.name.clone();
            }
        }
        out.push_str(&format!(
            "\n[{}] — best mean rank: {} ({best_mean:.1})\n{}",
            bundle.profile.name,
            best_name,
            t.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke() -> ExpConfig {
        ExpConfig {
            scale: Scale::Smoke,
            seed: 12,
            runs: 1,
            threads: 2,
        }
    }

    #[test]
    fn one_dataset_produces_nine_ranked_rows() {
        let cfg = smoke();
        let bundle = DataBundle::prepare(&cfg, "ml-100k");
        let rows = evaluate_dataset(&cfg, &bundle);
        assert_eq!(rows.len(), 9);
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"5D(RSVD, A, RR)"));
        assert!(names.contains(&"GANC(RSVD, θG, Dyn)"));
    }

    #[test]
    fn ganc_wins_coverage_over_pure_rsvd() {
        let cfg = smoke();
        let bundle = DataBundle::prepare(&cfg, "ml-100k");
        let rows = evaluate_dataset(&cfg, &bundle);
        let rsvd = rows.iter().find(|r| r.name == "RSVD").unwrap();
        let ganc = rows
            .iter()
            .find(|r| r.name.starts_with("GANC(RSVD, θG"))
            .unwrap();
        assert!(
            ganc.metrics.coverage > rsvd.metrics.coverage,
            "GANC coverage {} vs RSVD {}",
            ganc.metrics.coverage,
            rsvd.metrics.coverage
        );
    }

    #[test]
    fn th_rule_matches_paper() {
        assert_eq!(th_for("ml-10m"), 0);
        assert_eq!(th_for("netflix"), 0);
        assert_eq!(th_for("ml-100k"), 1);
    }
}
