//! Table V (Appendix A): RSVD hyper-parameter selection — validation RMSE
//! for the paper's chosen `(η, λ, g)` per dataset plus grid neighbors.

use crate::context::{DataBundle, ExpConfig};
use crate::models::rsvd_config;
use crate::tables::TextTable;
use ganc_recommender::rsvd::Rsvd;

/// Evaluate the chosen configuration and a small neighborhood grid on a
/// validation split nested inside train.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = String::from(
        "Table V — RSVD hyper-parameters: validation RMSE (chosen config per dataset + neighbors)\n",
    );
    for bundle in DataBundle::all(cfg) {
        let (sub, val) = bundle
            .split
            .validation_split(0.8, cfg.seed ^ 0x7AB5)
            .expect("train always splittable");
        let chosen = rsvd_config(&bundle, cfg);
        // Neighborhood: halve/double the learning rate, vary λ, shrink g.
        let mut grid = vec![("chosen", chosen)];
        let mut half_eta = chosen;
        half_eta.learning_rate /= 3.0;
        grid.push(("η/3", half_eta));
        let mut big_reg = chosen;
        big_reg.reg = (big_reg.reg * 10.0).min(0.1);
        grid.push(("λ×10", big_reg));
        let mut small_g = chosen;
        small_g.factors = (small_g.factors / 4).max(2);
        grid.push(("g/4", small_g));
        let mut t = TextTable::new(&["variant", "g", "η", "λ", "RMSE"]);
        let mut best = f64::INFINITY;
        let mut best_variant = "";
        for (label, c) in &grid {
            let model = Rsvd::train(&sub, *c);
            let rmse = model.rmse(&val);
            if rmse < best {
                best = rmse;
                best_variant = label;
            }
            t.row(vec![
                label.to_string(),
                c.factors.to_string(),
                format!("{:.3}", c.learning_rate),
                format!("{:.3}", c.reg),
                format!("{rmse:.4}"),
            ]);
        }
        out.push_str(&format!(
            "\n[{}] — best: {best_variant} (RMSE {best:.4})\n{}",
            bundle.profile.name,
            t.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn reports_four_variants_per_dataset() {
        let cfg = ExpConfig {
            scale: Scale::Smoke,
            seed: 14,
            runs: 1,
            threads: 2,
        };
        let out = run(&cfg);
        let rows = |prefix: &str| out.lines().filter(|l| l.starts_with(prefix)).count();
        assert_eq!(rows("chosen"), 5, "{out}");
        assert_eq!(rows("η/3"), 5);
        assert_eq!(rows("λ×10"), 5);
        assert_eq!(rows("g/4"), 5);
        assert_eq!(out.matches("best:").count(), 5);
    }
}
