//! # ganc-eval
//!
//! The experiment harness: one module per table/figure of the paper's
//! evaluation (§IV–V, Appendices A & C), regenerating the same rows and
//! series on the calibrated synthetic datasets.
//!
//! | module | reproduces | binary |
//! |--------|-----------|--------|
//! | [`table2`] | Table II — dataset statistics | `table2` |
//! | [`fig1`] | Figure 1 — avg popularity vs user activity | `fig1` |
//! | [`fig2`] | Figure 2 — θ-distribution histograms | `fig2` |
//! | [`fig3_4`] | Figures 3–4 — OSLG sample-size sweeps | `fig3`, `fig4` |
//! | [`fig5`] | Figure 5 — GANC × θ-model × ARec grid | `fig5` |
//! | [`table4`] | Table IV — re-ranking comparison + mean ranks | `table4` |
//! | [`fig6`] | Figure 6 — accuracy/coverage/novelty scatter | `fig6` |
//! | [`table5`] | Table V — RSVD hyper-parameter study | `table5` |
//! | [`fig7_8`] | Figures 7–8 — test-protocol comparison | `fig7`, `fig8` |
//!
//! [`ablation`] adds the design-choice studies DESIGN.md calls out
//! (ordering, sample size, personalization) under the `ablation` binary.
//!
//! The `experiments` binary runs the full suite. Every binary accepts
//! `--scale smoke|paper` (smoke ≈ 8× downscaled datasets for quick checks)
//! and `--seed <u64>`.

pub mod ablation;
pub mod context;
pub mod fig1;
pub mod fig2;
pub mod fig3_4;
pub mod fig5;
pub mod fig6;
pub mod fig7_8;
pub mod models;
pub mod table2;
pub mod table4;
pub mod table5;
pub mod tables;

pub use context::{DataBundle, ExpConfig, Scale};

/// Parse the shared `--scale` / `--seed` / `--runs` CLI flags used by every
/// experiment binary. Unknown flags abort with a usage message.
pub fn parse_cli(args: &[String]) -> ExpConfig {
    let mut cfg = ExpConfig::default();
    let mut k = 0;
    while k < args.len() {
        match args[k].as_str() {
            "--scale" => {
                k += 1;
                cfg.scale = match args.get(k).map(String::as_str) {
                    Some("smoke") => Scale::Smoke,
                    Some("paper") => Scale::Paper,
                    other => usage(&format!("bad --scale value {other:?}")),
                };
            }
            "--seed" => {
                k += 1;
                cfg.seed = args
                    .get(k)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("bad --seed value"));
            }
            "--runs" => {
                k += 1;
                cfg.runs = args
                    .get(k)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("bad --runs value"));
            }
            "--threads" => {
                k += 1;
                cfg.threads = args
                    .get(k)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("bad --threads value"));
            }
            other => usage(&format!("unknown flag {other:?}")),
        }
        k += 1;
    }
    cfg
}

fn usage(problem: &str) -> ! {
    eprintln!("{problem}");
    eprintln!("usage: <bin> [--scale smoke|paper] [--seed N] [--runs N] [--threads N]");
    std::process::exit(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_defaults_and_overrides() {
        let cfg = parse_cli(&[]);
        assert_eq!(cfg.scale, Scale::Smoke);
        let cfg = parse_cli(&[
            "--scale".into(),
            "paper".into(),
            "--seed".into(),
            "9".into(),
            "--runs".into(),
            "5".into(),
        ]);
        assert_eq!(cfg.scale, Scale::Paper);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.runs, 5);
    }
}
