//! Figures 3 & 4: effect of the OSLG sample size `S` on F-measure@5 and
//! Coverage@5 for `GANC(ARec, θ^G, Dyn)`, with the accuracy recommender
//! varied over {PSVD100, PSVD10, Pop, RSVD}.
//!
//! Figure 3 runs on ML-1M (dense), Figure 4 on MT-200K (sparse). The
//! paper's observation: growing `S` raises coverage and (for most ARecs)
//! costs a little F-measure — `S = 500` is the chosen compromise.

use crate::context::{DataBundle, ExpConfig, Scale};
use crate::models::{ganc_runs, mean_of, train_psvd, train_rsvd};
use crate::tables::{f4, TextTable};
use ganc_core::{AccuracyMode, CoverageKind};
use ganc_metrics::{coverage, evaluate_topn};
use ganc_preference::GeneralizedConfig;
use ganc_recommender::pop::MostPopular;
use ganc_recommender::Recommender;

/// The swept sample sizes (paper x-axis: 100–900).
pub fn sample_sizes(cfg: &ExpConfig) -> Vec<usize> {
    match cfg.scale {
        Scale::Smoke => vec![20, 60, 100, 140, 180],
        Scale::Paper => vec![100, 300, 500, 700, 900],
    }
}

/// Run the sweep for one dataset (`"ml-1m"` → Figure 3, `"mt-200k"` →
/// Figure 4).
pub fn run(cfg: &ExpConfig, dataset: &str) -> String {
    let figure = if dataset == "mt-200k" { 4 } else { 3 };
    let bundle = DataBundle::prepare(cfg, dataset);
    let train = &bundle.split.train;
    let theta = GeneralizedConfig::default().estimate(train);
    let psvd100 = train_psvd(&bundle, cfg, 100);
    let psvd10 = train_psvd(&bundle, cfg, 10);
    let pop = MostPopular::fit(train);
    let rsvd = train_rsvd(&bundle, cfg);
    let arecs: Vec<(&dyn Recommender, AccuracyMode)> = vec![
        (&psvd100, AccuracyMode::Normalized),
        (&psvd10, AccuracyMode::Normalized),
        (&pop, AccuracyMode::TopNIndicator),
        (&rsvd, AccuracyMode::Normalized),
    ];
    let mut out = format!(
        "Figure {figure} — GANC(ARec, θG, Dyn): sample-size sweep on {}\n",
        bundle.profile.name
    );
    for (arec, mode) in arecs {
        let mut t = TextTable::new(&["S", "F-measure@5", "Coverage@5"]);
        let mut series = Vec::new();
        for s in sample_sizes(cfg) {
            let runs = ganc_runs(
                arec,
                mode,
                &theta,
                &bundle,
                5,
                CoverageKind::Dynamic,
                s,
                cfg,
            );
            let f = mean_of(&runs, |r| evaluate_topn(r, &bundle.ctx).f_measure);
            let c = mean_of(&runs, |r| coverage::coverage(r, train.n_items()));
            series.push((s, f, c));
            t.row(vec![s.to_string(), f4(f), f4(c)]);
        }
        let cov_rises =
            series.first().map(|p| p.2).unwrap_or(0.0) <= series.last().map(|p| p.2).unwrap_or(0.0);
        out.push_str(&format!(
            "\nARec = {} ({})\n{}",
            arec.name(),
            if cov_rises {
                "coverage grows with S, as in the paper"
            } else {
                "coverage did not grow"
            },
            t.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_monotone_coverage_for_psvd() {
        let cfg = ExpConfig {
            scale: Scale::Smoke,
            seed: 7,
            runs: 1,
            threads: 2,
        };
        let out = run(&cfg, "ml-1m");
        // At least 3 of the 4 ARecs should show the paper's rising-coverage
        // shape on the smoke-scale data (Pop's indicator scores can be
        // degenerate at tiny scale).
        assert!(
            out.matches("coverage grows with S, as in the paper")
                .count()
                >= 3,
            "{out}"
        );
    }

    #[test]
    fn figure_number_follows_dataset() {
        let cfg = ExpConfig {
            scale: Scale::Smoke,
            seed: 7,
            runs: 1,
            threads: 2,
        };
        assert!(run(&cfg, "mt-200k").starts_with("Figure 4"));
    }
}
