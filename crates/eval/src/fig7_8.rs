//! Figures 7 & 8 (Appendix C): how the test ranking protocol changes the
//! measured trade-offs.
//!
//! For a suite of standard models, top-5 metrics are computed under both
//! the **all unrated items** protocol and the **rated test-items**
//! protocol on ML-100K (Fig. 7) and ML-1M (Fig. 8). The paper's findings
//! this reproduces: the rated-test-items protocol inflates accuracy for
//! every model (random suggestion reaches F ≈ 0.25), rewards
//! popularity-biased models, and compresses LTAccuracy.

use crate::context::{DataBundle, ExpConfig};
use crate::models::{train_psvd, train_rankmf, train_rsvd};
use crate::tables::{f4, TextTable};
use ganc_dataset::{Interactions, UserId};
use ganc_metrics::protocol::train_item_mask;
use ganc_metrics::{evaluate_topn, RankingProtocol, TopN};
use ganc_recommender::pop::MostPopular;
use ganc_recommender::random::RandomRec;
use ganc_recommender::rsvd::{Rsvd, RsvdConfig};
use ganc_recommender::topn::select_top_n;
use ganc_recommender::Recommender;

const N: usize = 5;

/// Generate top-N lists under an arbitrary ranking protocol (the
/// all-unrated fast path lives in `ganc-recommender`; this generic version
/// also serves the rated-test-items protocol).
pub fn topn_under_protocol(
    rec: &dyn Recommender,
    train: &Interactions,
    test: &Interactions,
    protocol: RankingProtocol,
    n: usize,
    threads: usize,
) -> TopN {
    let n_users = train.n_users() as usize;
    let n_items = train.n_items() as usize;
    let in_train = train_item_mask(train);
    let mut lists = vec![Vec::new(); n_users];
    let threads = threads.max(1).min(n_users.max(1));
    let chunk = n_users.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, out_chunk) in lists.chunks_mut(chunk).enumerate() {
            let in_train = &in_train;
            scope.spawn(move || {
                let mut scores = vec![0.0f64; n_items];
                let mut cands: Vec<u32> = Vec::new();
                let base = t * chunk;
                for (off, slot) in out_chunk.iter_mut().enumerate() {
                    let u = UserId((base + off) as u32);
                    rec.score_items(u, &mut scores);
                    protocol.candidates(train, test, in_train, u, &mut cands);
                    *slot = select_top_n(&scores, cands.iter().copied(), n);
                }
            });
        }
    });
    TopN::new(n, lists)
}

/// Run the protocol comparison for one dataset (`"ml-100k"` → Figure 7,
/// `"ml-1m"` → Figure 8).
pub fn run(cfg: &ExpConfig, dataset: &str) -> String {
    let figure = if dataset == "ml-1m" { 8 } else { 7 };
    let bundle = DataBundle::prepare(cfg, dataset);
    let train = &bundle.split.train;
    let test = &bundle.split.test;
    let rsvd = train_rsvd(&bundle, cfg);
    let rsvdn = {
        let mut c: RsvdConfig = crate::models::rsvd_config(&bundle, cfg);
        c.non_negative = true;
        Rsvd::train(train, c)
    };
    let psvd10 = train_psvd(&bundle, cfg, 10);
    let psvd100 = train_psvd(&bundle, cfg, 100);
    let psvd200 = train_psvd(&bundle, cfg, 200);
    let rankmf = train_rankmf(&bundle, cfg);
    let pop = MostPopular::fit(train);
    let rand = RandomRec::new(cfg.seed ^ 0xF16);
    let models: Vec<&dyn Recommender> = vec![
        &rand, &pop, &rsvd, &rsvdn, &rankmf, &psvd10, &psvd100, &psvd200,
    ];
    let mut out = format!(
        "Figure {figure} — protocol comparison on {} (top-5)\n",
        bundle.profile.name
    );
    for protocol in [RankingProtocol::AllUnrated, RankingProtocol::RatedTestItems] {
        let mut t = TextTable::new(&["model", "Precision@5", "F@5", "Coverage@5", "LTAcc@5"]);
        for rec in &models {
            let topn = topn_under_protocol(*rec, train, test, protocol, N, cfg.threads);
            let m = evaluate_topn(&topn, &bundle.ctx);
            t.row(vec![
                rec.name(),
                f4(m.precision),
                f4(m.f_measure),
                f4(m.coverage),
                f4(m.lt_accuracy),
            ]);
        }
        out.push_str(&format!("\nprotocol: {}\n{}", protocol.label(), t.render()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;
    use ganc_metrics::accuracy;

    fn smoke() -> ExpConfig {
        ExpConfig {
            scale: Scale::Smoke,
            seed: 15,
            runs: 1,
            threads: 2,
        }
    }

    #[test]
    fn rated_test_items_inflates_random_accuracy() {
        let cfg = smoke();
        let bundle = DataBundle::prepare(&cfg, "ml-100k");
        let rand = RandomRec::new(1);
        let all = topn_under_protocol(
            &rand,
            &bundle.split.train,
            &bundle.split.test,
            RankingProtocol::AllUnrated,
            N,
            2,
        );
        let rated = topn_under_protocol(
            &rand,
            &bundle.split.train,
            &bundle.split.test,
            RankingProtocol::RatedTestItems,
            N,
            2,
        );
        let p_all = accuracy::precision(&all, &bundle.ctx.relevance);
        let p_rated = accuracy::precision(&rated, &bundle.ctx.relevance);
        assert!(
            p_rated > 3.0 * p_all.max(1e-6),
            "rated-protocol random precision {p_rated} should dwarf {p_all}"
        );
    }

    #[test]
    fn report_contains_both_protocols() {
        let cfg = smoke();
        let out = run(&cfg, "ml-100k");
        assert!(out.contains("protocol: all-unrated"));
        assert!(out.contains("protocol: rated-test-items"));
        assert!(out.starts_with("Figure 7"));
    }
}
