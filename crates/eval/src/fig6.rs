//! Figure 6: the accuracy / coverage / novelty trade-off map across all
//! five datasets (§V-B).
//!
//! Models: Rand, Pop, RSVD, RankMF100 (CofiR100 stand-in), PSVD10, PSVD100,
//! PRA(ARec, 10), GANC(ARec, θ^G, Dyn), GANC(ARec, θ^G, Stat),
//! GANC(ARec, θ^G, Rand) — where the plugged-in accuracy recommender
//! follows the paper's sparse/dense rule (Pop on MT-200K, PSVD100
//! elsewhere). For every model the three plotted coordinates are reported:
//! F-measure@5, Coverage@5 and LTAccuracy@5.

use crate::context::{DataBundle, ExpConfig, Scale};
use crate::models::{arec_choice, ganc_runs, mean_of, train_psvd, train_rankmf, train_rsvd};
use crate::tables::{f4, TextTable};
use ganc_core::CoverageKind;
use ganc_metrics::{evaluate_topn, TopN};
use ganc_preference::GeneralizedConfig;
use ganc_recommender::pop::MostPopular;
use ganc_recommender::random::RandomRec;
use ganc_recommender::topn::generate_topn_lists;
use ganc_recommender::Recommender;
use ganc_rerank::pra::Pra;
use ganc_rerank::rerank_all;
use ganc_rerank::Reranker;

const N: usize = 5;

/// Render the Figure 6 coordinates for every dataset.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = String::from(
        "Figure 6 — accuracy vs coverage vs novelty (F@5 / Coverage@5 / LTAccuracy@5)\n",
    );
    for bundle in DataBundle::all(cfg) {
        let train = &bundle.split.train;
        let theta = GeneralizedConfig::default().estimate(train);
        let pop = MostPopular::fit(train);
        let rsvd = train_rsvd(&bundle, cfg);
        let psvd10 = train_psvd(&bundle, cfg, 10);
        let psvd100 = train_psvd(&bundle, cfg, 100);
        let rankmf = train_rankmf(&bundle, cfg);
        let (arec_name, arec_mode) = arec_choice(&bundle);
        let arec: &dyn Recommender = if arec_name == "Pop" { &pop } else { &psvd100 };

        let mut t = TextTable::new(&["model", "F@5", "Coverage@5", "LTAcc@5"]);
        let mut add = |name: String, f: f64, c: f64, l: f64| {
            t.row(vec![name, f4(f), f4(c), f4(l)]);
        };
        // Rand: averaged over runs with varying seeds.
        {
            let runs: Vec<TopN> = (0..cfg.runs.max(1))
                .map(|r| {
                    let rec = RandomRec::new(cfg.seed ^ 0xA0 ^ (r as u64));
                    TopN::new(N, generate_topn_lists(&rec, train, N, cfg.threads))
                })
                .collect();
            add(
                "Rand".into(),
                mean_of(&runs, |r| evaluate_topn(r, &bundle.ctx).f_measure),
                mean_of(&runs, |r| evaluate_topn(r, &bundle.ctx).coverage),
                mean_of(&runs, |r| evaluate_topn(r, &bundle.ctx).lt_accuracy),
            );
        }
        // Deterministic baselines.
        let baselines: Vec<&dyn Recommender> = vec![&pop, &rsvd, &rankmf, &psvd10, &psvd100];
        for rec in baselines {
            let topn = TopN::new(N, generate_topn_lists(rec, train, N, cfg.threads));
            let m = evaluate_topn(&topn, &bundle.ctx);
            add(rec.name(), m.f_measure, m.coverage, m.lt_accuracy);
        }
        // PRA over the chosen ARec.
        {
            let pra = Pra::new(train, arec_name, 10);
            let lists = rerank_all(&pra, arec, train, N, cfg.threads);
            let m = evaluate_topn(&TopN::new(N, lists), &bundle.ctx);
            add(Reranker::name(&pra), m.f_measure, m.coverage, m.lt_accuracy);
        }
        // GANC with the three coverage recommenders.
        let sample_size = match cfg.scale {
            Scale::Smoke => 60,
            Scale::Paper => 500,
        };
        for kind in [
            CoverageKind::Dynamic,
            CoverageKind::Static,
            CoverageKind::Random,
        ] {
            let runs = ganc_runs(arec, arec_mode, &theta, &bundle, N, kind, sample_size, cfg);
            add(
                format!("GANC({arec_name}, θG, {})", kind.label()),
                mean_of(&runs, |r| evaluate_topn(r, &bundle.ctx).f_measure),
                mean_of(&runs, |r| evaluate_topn(r, &bundle.ctx).coverage),
                mean_of(&runs, |r| evaluate_topn(r, &bundle.ctx).lt_accuracy),
            );
        }
        out.push_str(&format!(
            "\n[{}] (ARec = {arec_name})\n{}",
            bundle.profile.name,
            t.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_ten_models_per_dataset() {
        let cfg = ExpConfig {
            scale: Scale::Smoke,
            seed: 13,
            runs: 1,
            threads: 2,
        };
        // Single dataset to keep the test fast: reuse run()'s internals via
        // a full run over smoke data is still seconds-scale; restrict by
        // checking the header count on the full output instead.
        let out = run(&cfg);
        assert_eq!(out.matches("GANC(").count(), 15, "{out}");
        assert!(out.contains("(ARec = Pop)"), "MT must use Pop");
        assert!(out.contains("(ARec = PSVD100)"));
    }
}
