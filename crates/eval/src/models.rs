//! The model zoo: per-dataset base-recommender construction with the
//! paper's hyper-parameters (Appendix A, Table V).

use crate::context::{DataBundle, ExpConfig, Scale};
use ganc_core::{AccuracyMode, CoverageKind, GancBuilder};
use ganc_metrics::TopN;
use ganc_recommender::psvd::Psvd;
use ganc_recommender::rankmf::{RankMf, RankMfConfig};
use ganc_recommender::rsvd::{Rsvd, RsvdConfig};
use ganc_recommender::Recommender;

/// The RSVD configuration Table V selects for each dataset
/// (`(η, λ, g)` rows), shrunk at smoke scale.
pub fn rsvd_config(bundle: &DataBundle, cfg: &ExpConfig) -> RsvdConfig {
    let (eta, lambda, g) = match bundle.short.as_str() {
        "ml-100k" => (0.03, 0.05, 100),
        "ml-1m" => (0.03, 0.05, 100),
        "ml-10m" => (0.003, 0.005, 20),
        "mt-200k" => (0.01, 0.01, 40),
        "netflix" => (0.002, 0.05, 100),
        _ => (0.01, 0.05, 40),
    };
    let (factors, epochs) = match cfg.scale {
        Scale::Smoke => (g.min(16), 10),
        Scale::Paper => (g, 20),
    };
    RsvdConfig {
        factors,
        learning_rate: eta,
        reg: lambda,
        epochs,
        use_biases: true,
        non_negative: false,
        seed: cfg.seed ^ 0x5E5D,
    }
}

/// Train RSVD with the dataset's Table V parameters.
pub fn train_rsvd(bundle: &DataBundle, cfg: &ExpConfig) -> Rsvd {
    Rsvd::train(&bundle.split.train, rsvd_config(bundle, cfg))
}

/// Train PureSVD with `k` factors (PSVD10 / PSVD100 in the paper), with the
/// rank shrunk at smoke scale.
pub fn train_psvd(bundle: &DataBundle, cfg: &ExpConfig, k: usize) -> Psvd {
    let k = match cfg.scale {
        Scale::Smoke => k.clamp(4, 16),
        Scale::Paper => k,
    };
    Psvd::train(&bundle.split.train, k, cfg.seed ^ 0x95BD)
}

/// Train the CoFiRank stand-in (RankMF, 100 factors at paper scale).
pub fn train_rankmf(bundle: &DataBundle, cfg: &ExpConfig) -> RankMf {
    let (factors, epochs) = match cfg.scale {
        Scale::Smoke => (16, 8),
        Scale::Paper => (100, 10),
    };
    RankMf::train(
        &bundle.split.train,
        RankMfConfig {
            factors,
            epochs,
            seed: cfg.seed ^ 0xC0F1,
            ..RankMfConfig::default()
        },
    )
}

/// The paper's §V-B rule for picking GANC's accuracy recommender: Pop on
/// the very sparse MT-200K, PSVD100 elsewhere. Returns the adapter mode to
/// use with it (Pop has no scores → top-N indicator).
pub fn arec_choice(bundle: &DataBundle) -> (&'static str, AccuracyMode) {
    if bundle.is_sparse() {
        ("Pop", AccuracyMode::TopNIndicator)
    } else {
        ("PSVD100", AccuracyMode::Normalized)
    }
}

/// Run a GANC variant `runs` times (varying the seed) and return the
/// per-run [`TopN`] collections. Callers average the metric rows.
#[allow(clippy::too_many_arguments)]
pub fn ganc_runs(
    base: &dyn Recommender,
    mode: AccuracyMode,
    theta: &[f64],
    bundle: &DataBundle,
    n: usize,
    coverage: CoverageKind,
    sample_size: usize,
    cfg: &ExpConfig,
) -> Vec<TopN> {
    (0..cfg.runs.max(1))
        .map(|run| {
            let lists = GancBuilder::new(n)
                .coverage(coverage)
                .accuracy_mode(mode)
                .sample_size(sample_size)
                .threads(cfg.threads)
                .build_topn(
                    base,
                    theta,
                    &bundle.split.train,
                    cfg.seed ^ (run as u64) << 8,
                )
                .into_lists();
            TopN::new(n, lists)
        })
        .collect()
}

/// Average a metric extracted from several runs.
pub fn mean_of<F: Fn(&TopN) -> f64>(runs: &[TopN], f: F) -> f64 {
    if runs.is_empty() {
        return 0.0;
    }
    runs.iter().map(f).sum::<f64>() / runs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    fn smoke() -> ExpConfig {
        ExpConfig {
            scale: Scale::Smoke,
            seed: 3,
            runs: 2,
            threads: 2,
        }
    }

    #[test]
    fn rsvd_config_follows_table_v() {
        let cfg = ExpConfig {
            scale: Scale::Paper,
            ..smoke()
        };
        let b = DataBundle::prepare(&smoke(), "ml-10m");
        let r = rsvd_config(&b, &cfg);
        assert_eq!(r.factors, 20);
        assert!((r.learning_rate - 0.003).abs() < 1e-12);
        assert!((r.reg - 0.005).abs() < 1e-12);
    }

    #[test]
    fn smoke_scale_shrinks_models() {
        let cfg = smoke();
        let b = DataBundle::prepare(&cfg, "ml-100k");
        assert!(rsvd_config(&b, &cfg).factors <= 16);
    }

    #[test]
    fn arec_choice_matches_paper_rule() {
        let cfg = smoke();
        let mt = DataBundle::prepare(&cfg, "mt-200k");
        let ml = DataBundle::prepare(&cfg, "ml-100k");
        assert_eq!(arec_choice(&mt).0, "Pop");
        assert_eq!(arec_choice(&ml).0, "PSVD100");
    }

    #[test]
    fn ganc_runs_produce_valid_collections() {
        let cfg = smoke();
        let b = DataBundle::prepare(&cfg, "ml-100k");
        let pop = ganc_recommender::pop::MostPopular::fit(&b.split.train);
        let theta = vec![0.5; b.split.train.n_users() as usize];
        let runs = ganc_runs(
            &pop,
            AccuracyMode::Normalized,
            &theta,
            &b,
            5,
            CoverageKind::Dynamic,
            30,
            &cfg,
        );
        assert_eq!(runs.len(), 2);
        for topn in &runs {
            assert_eq!(topn.contract_violation(&b.split.train), None);
        }
    }

    #[test]
    fn mean_of_averages() {
        let a = TopN::new(1, vec![vec![ganc_dataset::ItemId(0)]]);
        let b = TopN::new(1, vec![vec![]]);
        let m = mean_of(&[a, b], |t| t.lists()[0].len() as f64);
        assert!((m - 0.5).abs() < 1e-12);
    }
}
