//! Ablation studies of GANC's design choices (not a paper artifact; they
//! quantify the decisions §III-C motivates qualitatively):
//!
//! 1. **Ordering** — OSLG processes sampled users in increasing θ. How much
//!    objective value does that buy over the arbitrary order plain Locally
//!    Greedy uses?
//! 2. **Sampling** — how quickly does the assignment-order objective decay
//!    as the sequential sample shrinks from `|U|` (full Locally Greedy) to
//!    small `S`?
//! 3. **θ personalization** — learned θ^G vs the best global constant: does
//!    per-user preference actually beat a tuned scalar trade-off (the
//!    paper's core claim against cross-validated re-rankers)?

use crate::context::{DataBundle, ExpConfig, Scale};
use crate::models::{ganc_runs, train_psvd};
use crate::tables::{f4, TextTable};
use ganc_core::accuracy::NormalizedScores;
use ganc_core::oslg::{assignment_order_objective, oslg_topn, OslgConfig, UserOrdering};
use ganc_core::{AccuracyMode, CoverageKind};
use ganc_dataset::UserId;
use ganc_metrics::evaluate_topn;
use ganc_preference::simple::theta_constant;
use ganc_preference::GeneralizedConfig;

/// Render all three ablations on the ML-100K-sized dataset.
pub fn run(cfg: &ExpConfig) -> String {
    let bundle = DataBundle::prepare(cfg, "ml-100k");
    let train = &bundle.split.train;
    let theta = GeneralizedConfig::default().estimate(train);
    let psvd = train_psvd(&bundle, cfg, 100);
    let arec = NormalizedScores::new(&psvd);
    let n_users = train.n_users() as usize;
    let theta_order: Vec<UserId> = {
        let mut o: Vec<UserId> = (0..n_users as u32).map(UserId).collect();
        o.sort_by(|a, b| theta[a.idx()].partial_cmp(&theta[b.idx()]).unwrap());
        o
    };
    let objective = |lists: &Vec<Vec<ganc_dataset::ItemId>>| {
        assignment_order_objective(lists, &theta_order, &theta, &arec, train.n_items())
    };
    let mut out = format!(
        "Ablations — GANC design choices on {} (ARec = PSVD100, θ = θG)\n",
        bundle.profile.name
    );

    // 1. Ordering ablation at full sample (pure Locally Greedy comparison).
    {
        let mut t = TextTable::new(&["ordering", "objective", "Coverage@5"]);
        for (label, ordering) in [
            ("increasing θ (OSLG)", UserOrdering::IncreasingTheta),
            ("arbitrary (plain LG)", UserOrdering::Arbitrary),
        ] {
            let lists = oslg_topn(
                &arec,
                &theta,
                train,
                &OslgConfig {
                    sample_size: n_users,
                    ordering,
                    threads: cfg.threads,
                    ..OslgConfig::new(5)
                },
            );
            let topn = ganc_metrics::TopN::new(5, lists.clone());
            let m = evaluate_topn(&topn, &bundle.ctx);
            t.row(vec![
                label.into(),
                format!("{:.1}", objective(&lists)),
                f4(m.coverage),
            ]);
        }
        out.push_str(&format!("\n1. user ordering (S = |U|)\n{}", t.render()));
    }

    // 2. Sample-size ablation: objective retention vs the full greedy.
    {
        let full_lists = oslg_topn(
            &arec,
            &theta,
            train,
            &OslgConfig {
                sample_size: n_users,
                threads: cfg.threads,
                ..OslgConfig::new(5)
            },
        );
        let full_obj = objective(&full_lists);
        let mut t = TextTable::new(&["S", "objective", "% of full greedy"]);
        for frac in [1usize, 2, 4, 8, 16] {
            let s = (n_users / frac).max(1);
            let lists = oslg_topn(
                &arec,
                &theta,
                train,
                &OslgConfig {
                    sample_size: s,
                    threads: cfg.threads,
                    ..OslgConfig::new(5)
                },
            );
            let obj = objective(&lists);
            t.row(vec![
                s.to_string(),
                format!("{obj:.1}"),
                format!("{:.1}%", 100.0 * obj / full_obj.max(1e-9)),
            ]);
        }
        out.push_str(&format!("\n2. sequential sample size\n{}", t.render()));
    }

    // 3. Personalization ablation: θ^G vs global constants.
    {
        let sample = match cfg.scale {
            Scale::Smoke => 60,
            Scale::Paper => 500,
        };
        let mut t = TextTable::new(&["θ model", "F@5", "Coverage@5", "Gini@5"]);
        let mut evaluate = |label: String, theta: &[f64]| {
            let runs = ganc_runs(
                &psvd,
                AccuracyMode::Normalized,
                theta,
                &bundle,
                5,
                CoverageKind::Dynamic,
                sample,
                cfg,
            );
            let k = runs.len() as f64;
            let (mut f, mut c, mut g) = (0.0, 0.0, 0.0);
            for r in &runs {
                let m = evaluate_topn(r, &bundle.ctx);
                f += m.f_measure / k;
                c += m.coverage / k;
                g += m.gini / k;
            }
            t.row(vec![label, f4(f), f4(c), f4(g)]);
            (f, c)
        };
        let (f_g, c_g) = evaluate("θG (learned)".into(), &theta);
        let mut best_const = (0.0f64, 0.0f64, 0.0f64);
        for c100 in [20u32, 35, 50, 65, 80] {
            let cval = c100 as f64 / 100.0;
            let (f, c) = evaluate(
                format!("θC = {cval:.2}"),
                &theta_constant(train.n_users(), cval),
            );
            // "best constant" by F subject to at least matching θG coverage.
            if c >= c_g * 0.9 && f > best_const.1 {
                best_const = (cval, f, c);
            }
        }
        out.push_str(&format!(
            "\n3. personalization (θG F@5 = {}; best coverage-matched constant: θC={:.2} with F@5 = {})\n{}",
            f4(f_g),
            best_const.0,
            f4(best_const.1),
            t.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_report_has_three_sections() {
        let cfg = ExpConfig {
            scale: Scale::Smoke,
            seed: 17,
            runs: 1,
            threads: 2,
        };
        let out = run(&cfg);
        assert!(out.contains("1. user ordering"));
        assert!(out.contains("2. sequential sample size"));
        assert!(out.contains("3. personalization"));
        // Sample-size table has the full row at 100%.
        assert!(out.contains("100.0%"), "{out}");
    }
}
