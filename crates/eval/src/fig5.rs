//! Figure 5: `GANC(ARec, θ, Dyn)` on ML-1M with `S = 500`, varying the
//! accuracy recommender over {RSVD, PSVD100, PSVD10, Pop}, the preference
//! model over {θ^R, θ^C, θ^N, θ^T, θ^G}, and `N ∈ {5, 10, 15, 20}`;
//! metrics: F-measure, Stratified Recall, LTAccuracy, Coverage, Gini.
//!
//! Paper takeaways this reproduction checks: the pure ARec has the best
//! F-measure of each row but the worst coverage/gini; the informed
//! estimators (θ^N, θ^T, θ^G) dominate the controls (θ^R, θ^C) on
//! F-measure and stratified recall.

use crate::context::{DataBundle, ExpConfig, Scale};
use crate::models::{ganc_runs, train_psvd, train_rsvd};
use crate::tables::{f4, TextTable};
use ganc_core::{AccuracyMode, CoverageKind};
use ganc_dataset::stats::LongTail;
use ganc_metrics::{evaluate_topn, TopN, TopNMetrics};
use ganc_preference::simple::{theta_constant, theta_normalized, theta_random};
use ganc_preference::tfidf::theta_tfidf;
use ganc_preference::GeneralizedConfig;
use ganc_recommender::pop::MostPopular;
use ganc_recommender::topn::generate_topn_lists;
use ganc_recommender::Recommender;

/// The list sizes of the figure's x-axis.
pub const NS: [usize; 4] = [5, 10, 15, 20];

/// Average the full metric row over repeated runs.
fn mean_metrics(runs: &[TopN], bundle: &DataBundle) -> TopNMetrics {
    let rows: Vec<TopNMetrics> = runs.iter().map(|r| evaluate_topn(r, &bundle.ctx)).collect();
    let n = rows.len().max(1) as f64;
    let mut acc = TopNMetrics {
        precision: 0.0,
        recall: 0.0,
        f_measure: 0.0,
        strat_recall: 0.0,
        lt_accuracy: 0.0,
        coverage: 0.0,
        gini: 0.0,
        ndcg: 0.0,
    };
    for r in &rows {
        acc.precision += r.precision / n;
        acc.recall += r.recall / n;
        acc.f_measure += r.f_measure / n;
        acc.strat_recall += r.strat_recall / n;
        acc.lt_accuracy += r.lt_accuracy / n;
        acc.coverage += r.coverage / n;
        acc.gini += r.gini / n;
        acc.ndcg += r.ndcg / n;
    }
    acc
}

/// Run the Figure 5 grid (dataset is ML-1M in the paper; parameterized for
/// the smoke tests).
pub fn run(cfg: &ExpConfig) -> String {
    let bundle = DataBundle::prepare(cfg, "ml-1m");
    let train = &bundle.split.train;
    let n_users = train.n_users();
    let lt = LongTail::pareto(train);
    let theta_variants: Vec<(&str, Vec<f64>)> = vec![
        ("θN", theta_normalized(train, &lt)),
        ("θT", theta_tfidf(train)),
        ("θG", GeneralizedConfig::default().estimate(train)),
        ("θR", theta_random(n_users, cfg.seed ^ 0x7E7A)),
        ("θC", theta_constant(n_users, 0.5)),
    ];
    let sample_size = match cfg.scale {
        Scale::Smoke => 60,
        Scale::Paper => 500,
    };
    let rsvd = train_rsvd(&bundle, cfg);
    let psvd100 = train_psvd(&bundle, cfg, 100);
    let psvd10 = train_psvd(&bundle, cfg, 10);
    let pop = MostPopular::fit(train);
    let arecs: Vec<(&dyn Recommender, AccuracyMode)> = vec![
        (&rsvd, AccuracyMode::Normalized),
        (&psvd100, AccuracyMode::Normalized),
        (&psvd10, AccuracyMode::Normalized),
        (&pop, AccuracyMode::TopNIndicator),
    ];
    let mut out = format!(
        "Figure 5 — GANC(ARec, θ, Dyn) grid on {} (S = {sample_size})\n",
        bundle.profile.name
    );
    for (arec, mode) in arecs {
        let mut t = TextTable::new(&[
            "variant",
            "N",
            "F",
            "StratRecall",
            "LTAcc",
            "Coverage",
            "Gini",
        ]);
        for &n in &NS {
            // Row 1: the pure accuracy recommender.
            let pure = TopN::new(n, generate_topn_lists(arec, train, n, cfg.threads));
            let m = evaluate_topn(&pure, &bundle.ctx);
            t.row(vec![
                "ARec".into(),
                n.to_string(),
                f4(m.f_measure),
                f4(m.strat_recall),
                f4(m.lt_accuracy),
                f4(m.coverage),
                f4(m.gini),
            ]);
            for (label, theta) in &theta_variants {
                let runs = ganc_runs(
                    arec,
                    mode,
                    theta,
                    &bundle,
                    n,
                    CoverageKind::Dynamic,
                    sample_size,
                    cfg,
                );
                let m = mean_metrics(&runs, &bundle);
                t.row(vec![
                    format!("GANC(·, {label}, Dyn)"),
                    n.to_string(),
                    f4(m.f_measure),
                    f4(m.strat_recall),
                    f4(m.lt_accuracy),
                    f4(m.coverage),
                    f4(m.gini),
                ]);
            }
        }
        out.push_str(&format!("\nARec = {}\n{}", arec.name(), t.render()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_renders_all_blocks() {
        let cfg = ExpConfig {
            scale: Scale::Smoke,
            seed: 8,
            runs: 1,
            threads: 2,
        };
        let out = run(&cfg);
        for arec in ["RSVD", "PSVD", "Pop"] {
            assert!(out.contains(&format!("ARec = {arec}")), "{out}");
        }
        assert!(out.contains("GANC(·, θG, Dyn)"));
        // 4 arecs × 4 N × 6 variants rows
        assert!(out.matches("GANC(·, θR, Dyn)").count() == 16);
    }
}
