//! Plain-text table rendering and the Table IV rank aggregation.

use ganc_metrics::TopNMetrics;

/// A fixed-width text table builder for experiment output.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells already formatted).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Render with per-column width fitting.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate().take(cols) {
                widths[c] = widths[c].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.chars().count()..widths[c] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a metric with 4 decimals (the paper's Table IV precision).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Table IV rank aggregation: per metric, rank the algorithms (1 = best,
/// direction-aware, ties share the better rank like the paper's table), and
/// average the five ranks into the final score column.
///
/// Input: one `TopNMetrics` per algorithm. Output: per algorithm,
/// `(ranks[5], mean_rank)`.
pub fn table4_ranks(rows: &[TopNMetrics]) -> Vec<([usize; 5], f64)> {
    let m = rows.len();
    let mut ranks = vec![[0usize; 5]; m];
    #[allow(clippy::needless_range_loop)] // ranks is [alg][col]; col drives both lookups
    for col in 0..5usize {
        let higher_better = TopNMetrics::higher_is_better(col);
        let values: Vec<f64> = rows.iter().map(|r| r.table4_columns()[col]).collect();
        for (i, &v) in values.iter().enumerate() {
            // rank = 1 + number of strictly better algorithms
            let better = values
                .iter()
                .filter(|&&w| {
                    if higher_better {
                        w > v + 1e-12
                    } else {
                        w < v - 1e-12
                    }
                })
                .count();
            ranks[i][col] = better + 1;
        }
    }
    ranks
        .into_iter()
        .map(|r| {
            let mean = r.iter().sum::<usize>() as f64 / 5.0;
            (r, mean)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(f: f64, s: f64, l: f64, c: f64, g: f64) -> TopNMetrics {
        TopNMetrics {
            precision: f,
            recall: f,
            f_measure: f,
            strat_recall: s,
            lt_accuracy: l,
            coverage: c,
            gini: g,
            ndcg: 0.0,
        }
    }

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(&["alg", "F@5"]);
        t.row(vec!["RSVD".into(), "0.0279".into()]);
        t.row(vec!["GANC(RSVD, θG, Dyn)".into(), "0.0260".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("alg"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[3].contains("0.0260"));
    }

    #[test]
    fn ranks_are_direction_aware() {
        // alg0 best on F; alg1 best on gini (lower!)
        let rows = vec![
            metrics(0.9, 0.5, 0.5, 0.5, 0.9),
            metrics(0.1, 0.5, 0.5, 0.5, 0.1),
        ];
        let ranked = table4_ranks(&rows);
        assert_eq!(ranked[0].0[0], 1); // F: alg0 first
        assert_eq!(ranked[1].0[0], 2);
        assert_eq!(ranked[0].0[4], 2); // gini: alg1 first
        assert_eq!(ranked[1].0[4], 1);
    }

    #[test]
    fn ties_share_best_rank() {
        let rows = vec![
            metrics(0.5, 0.5, 0.5, 0.5, 0.5),
            metrics(0.5, 0.5, 0.5, 0.5, 0.5),
        ];
        let ranked = table4_ranks(&rows);
        assert_eq!(ranked[0].0, ranked[1].0);
        assert_eq!(ranked[0].0[0], 1);
        assert!((ranked[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_rank_averages_five_columns() {
        let rows = vec![
            metrics(0.9, 0.9, 0.9, 0.9, 0.1), // rank 1 everywhere
            metrics(0.1, 0.1, 0.1, 0.1, 0.9),
        ];
        let ranked = table4_ranks(&rows);
        assert!((ranked[0].1 - 1.0).abs() < 1e-12);
        assert!((ranked[1].1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn f4_formats() {
        assert_eq!(f4(0.123456), "0.1235");
    }
}
