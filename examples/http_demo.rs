//! Two-process sharded HTTP serving, end to end:
//!
//! 1. fit a bundle, cut it into two θ-band artifacts
//!    (`bundle.shard0.ganc`, `bundle.shard1.ganc`);
//! 2. spawn a **separate OS process** (this same example re-executed with
//!    `node-b <artifact>`) that loads shard 1's slice and serves its band
//!    over HTTP;
//! 3. run node A in this process: shard 0 served locally, shard 1 routed
//!    to node B through `RemoteShard`;
//! 4. drive a client session against node A and verify every response
//!    matches a single-process `ShardedEngine` exactly.
//!
//! Run with `cargo run --release --example http_demo`.

use ganc::dataset::synth::DatasetProfile;
use ganc::dataset::UserId;
use ganc::http::{
    Frontend, HttpClient, HttpServer, RemoteShard, RouterNode, ServerConfig, ShardRoute,
};
use ganc::preference::generalized::GeneralizedConfig;
use ganc::recommender::pop::MostPopular;
use ganc::serve::{
    EngineConfig, FitConfig, FittedModel, ModelBundle, SaveLoad, ServingEngine, ShardConfig,
    ShardedEngine,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Command, Stdio};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() >= 3 && args[1] == "node-b" {
        run_shard_node(&args[2]);
        return;
    }
    run_router_demo();
}

/// Node B: load one θ-band artifact, serve it, announce the port, and stay
/// up until the parent closes our stdin.
fn run_shard_node(artifact: &str) {
    let slice = ModelBundle::load(artifact).expect("load shard artifact");
    let engine = Arc::new(ServingEngine::new(slice, EngineConfig::default()));
    let server = HttpServer::bind(
        Frontend::Single(engine),
        None,
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .expect("bind node B");
    println!("LISTENING {}", server.local_addr());
    std::io::stdout().flush().unwrap();
    // Block until the parent drops our stdin — then shut down cleanly.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
}

/// Node A (and the orchestration): fit, slice, spawn B, route, verify.
fn run_router_demo() {
    // ---- fit and shard ----
    let data = DatasetProfile::small().generate(2024);
    let split = data.split_per_user(0.5, 9).unwrap();
    let train = split.train;
    println!(
        "fitting on {} users × {} items ({} ratings)",
        train.n_users(),
        train.n_items(),
        train.nnz()
    );
    let theta = GeneralizedConfig::default().estimate(&train);
    let pop = MostPopular::fit(&train);
    let cfg = FitConfig {
        sample_size: 200,
        ..FitConfig::new(10)
    };
    let bundle = ModelBundle::fit(FittedModel::Pop(pop), theta, train, &cfg);
    let n_users = bundle.n_users();

    let reference = ShardedEngine::new(bundle.clone(), ShardConfig::quantile(2));
    let dir = std::env::temp_dir().join("ganc_http_demo");
    std::fs::create_dir_all(&dir).unwrap();
    let paths = reference
        .save_shard_artifacts(dir.join("bundle.ganc"))
        .unwrap();
    let info = reference.shard_info();
    for (path, i) in paths.iter().zip(&info) {
        println!(
            "wrote {} — θ ∈ [{:.3}, {:.3}), {} users, {} snapshots",
            path.display(),
            i.theta_lo,
            i.theta_hi,
            i.users,
            i.snapshots
        );
    }

    // ---- node B: a second OS process serving shard 1's artifact ----
    let mut node_b = Command::new(std::env::current_exe().unwrap())
        .arg("node-b")
        .arg(&paths[1])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn node B process");
    let addr_b = {
        let stdout = node_b.stdout.take().unwrap();
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).unwrap();
        line.trim()
            .strip_prefix("LISTENING ")
            .expect("node B announcement")
            .to_string()
    };
    println!("node B (pid {}) serving shard 1 at {addr_b}", node_b.id());

    // ---- node A: shard 0 local, shard 1 via RemoteShard ----
    let slice_a = ModelBundle::load(&paths[0]).unwrap();
    let theta = Arc::clone(&slice_a.theta);
    let cuts: Vec<f64> = info[1..].iter().map(|i| i.theta_lo).collect();
    let local = Arc::new(ServingEngine::new(slice_a, EngineConfig::default()));
    let remote = RemoteShard::connect(addr_b.clone()).expect("node B reachable");
    let router = Arc::new(RouterNode::new(
        theta,
        cuts,
        vec![ShardRoute::Local(local), ShardRoute::remote(remote)],
    ));
    let node_a = HttpServer::bind(
        Frontend::Router(router),
        None,
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    println!("node A (router) at {}", node_a.local_addr());

    // ---- client session against node A ----
    let mut client = HttpClient::new(node_a.local_addr().to_string());
    for path in [
        "/v1/healthz".to_string(),
        "/v1/stats".to_string(),
        "/v1/recommend/17?n=5".to_string(),
        format!("/v1/recommend/{}?n=5", n_users - 1),
    ] {
        let resp = client.request("GET", &path, None).unwrap();
        println!(
            "GET {path} -> {} {}",
            resp.status,
            String::from_utf8_lossy(&resp.body)
        );
    }
    let batch_body = "{\"users\":[0,1,2,3,4]}";
    let resp = client
        .request("POST", "/v1/recommend:batch", Some(batch_body))
        .unwrap();
    println!(
        "POST /v1/recommend:batch {batch_body} -> {} ({} bytes)",
        resp.status,
        resp.body.len()
    );

    // ---- verify: two-process output == single-process ShardedEngine ----
    let mut verified = 0u32;
    for u in 0..n_users {
        let resp = client
            .request("GET", &format!("/v1/recommend/{u}"), None)
            .unwrap();
        assert_eq!(resp.status, 200, "user {u}");
        let v = tinyjson::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let got: Vec<u32> = v["items"]
            .as_array()
            .unwrap()
            .iter()
            .map(|i| i.as_u64().unwrap() as u32)
            .collect();
        let expect: Vec<u32> = reference
            .recommend(UserId(u))
            .unwrap()
            .iter()
            .map(|i| i.0)
            .collect();
        assert_eq!(got, expect, "user {u}: two-process ≠ single-process");
        verified += 1;
    }
    println!(
        "verified {verified}/{n_users} users: two-process routing output \
         is identical to the single-process ShardedEngine"
    );

    // ---- shutdown: close B's stdin, wait for it to exit ----
    drop(node_b.stdin.take());
    let status = node_b.wait().unwrap();
    println!("node B exited: {status}");
    for p in paths {
        std::fs::remove_file(p).ok();
    }
}
