//! The serving lifecycle end to end: fit a GANC configuration, persist it
//! as a model bundle, reload it (as a serving process would on startup),
//! answer requests, ingest live interactions, and watch the engine react.
//!
//! Run with `cargo run --release --example serve_demo`.

use ganc::dataset::synth::DatasetProfile;
use ganc::dataset::UserId;
use ganc::preference::generalized::GeneralizedConfig;
use ganc::recommender::pop::MostPopular;
use ganc::serve::{
    BatchConfig, EngineConfig, FitConfig, FittedModel, MicroBatcher, ModelBundle, SaveLoad,
    ServingEngine,
};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // ---- fit ----
    let data = DatasetProfile::small().generate(2024);
    let split = data.split_per_user(0.5, 9).unwrap();
    let train = split.train;
    println!(
        "fitting on {} users × {} items ({} ratings)",
        train.n_users(),
        train.n_items(),
        train.nnz()
    );
    let theta = GeneralizedConfig::default().estimate(&train);
    let pop = MostPopular::fit(&train);
    let fit_start = Instant::now();
    let cfg = FitConfig {
        sample_size: 200,
        ..FitConfig::new(10)
    };
    let bundle = ModelBundle::fit(FittedModel::Pop(pop), theta, train, &cfg);
    println!(
        "fit GANC({}, θ^G, {:?}) in {:.1?} — {} sampled users frozen",
        bundle.model_name,
        bundle.coverage.kind(),
        fit_start.elapsed(),
        bundle.seed_lists.len()
    );

    // ---- save → load ----
    let path = std::env::temp_dir().join("ganc_serve_demo.bundle");
    bundle.save(&path).unwrap();
    let on_disk = std::fs::metadata(&path).unwrap().len();
    let load_start = Instant::now();
    let restored = ModelBundle::load(&path).unwrap();
    println!(
        "bundle: {:.1} KiB on disk, loaded in {:.1?}",
        on_disk as f64 / 1024.0,
        load_start.elapsed()
    );
    assert_eq!(restored, bundle);

    // ---- serve ----
    let engine = Arc::new(ServingEngine::new(restored, EngineConfig::default()));
    let user = UserId(17);
    let first = engine.recommend(user).unwrap();
    println!("user {}: top-{} = {:?}", user.0, first.len(), &first[..5]);

    // Cache demonstration: the same request again is a hit.
    engine.recommend(user).unwrap();

    // ---- ingest: the user consumes their top recommendation ----
    let consumed = first[0];
    engine.ingest(user, consumed, 5.0).unwrap();
    let after = engine.recommend(user).unwrap();
    assert!(!after.contains(&consumed));
    println!(
        "after consuming item {}: top-5 = {:?}",
        consumed.0,
        &after[..5]
    );

    // ---- micro-batched concurrent traffic ----
    let batcher = MicroBatcher::spawn(Arc::clone(&engine), BatchConfig::default());
    let n_users = engine.n_users();
    let traffic_start = Instant::now();
    let requests = 2_000u32;
    std::thread::scope(|scope| {
        for t in 0..4u32 {
            let batcher = &batcher;
            scope.spawn(move || {
                for k in 0..requests / 4 {
                    let u = UserId((t * 911 + k * 7) % n_users);
                    batcher.request(u).unwrap();
                }
            });
        }
    });
    let elapsed = traffic_start.elapsed();
    let stats = engine.stats();
    println!(
        "{requests} concurrent requests in {:.1?} ({:.0} req/s) — {} hits / {} misses, {} cached",
        elapsed,
        requests as f64 / elapsed.as_secs_f64(),
        stats.cache_hits,
        stats.cache_misses,
        stats.cached
    );
    std::fs::remove_file(&path).ok();
}
