//! Sparse-setting study (the §V-B scenario): voluntary ratings scraped from
//! a social feed — MovieTweetings-shaped data where nearly half the users
//! have fewer than ten ratings.
//!
//! The paper's point: re-ranking a *rating-prediction* model (RSVD) is
//! hopeless here, but GANC is generic — plug in the non-personalized Pop
//! recommender as the accuracy component and the personalization comes from
//! the learned θ^G, making the combination competitive with personalized
//! latent-factor models while covering far more of the catalog.
//!
//! Run with: `cargo run --release --example sparse_twitter`

use ganc::core::{AccuracyMode, CoverageKind, GancBuilder};
use ganc::dataset::synth::DatasetProfile;
use ganc::metrics::{evaluate_topn, EvalContext, TopN};
use ganc::preference::GeneralizedConfig;
use ganc::recommender::pop::MostPopular;
use ganc::recommender::psvd::Psvd;
use ganc::recommender::rsvd::{Rsvd, RsvdConfig};
use ganc::recommender::topn::generate_topn_lists;
use ganc::recommender::Recommender;

const N: usize = 5;

fn main() {
    // MT-200K-like: 0-10 ratings, τ=5, density ≈ 0.16%, downscaled 4×.
    let mut profile = DatasetProfile::mt_200k();
    profile.n_users /= 4;
    profile.n_items /= 4;
    profile.target_ratings /= 16;
    let data = profile.generate(23).mapped_to_one_five();
    let split = data.split_per_user(profile.kappa, 9).unwrap();
    let train = &split.train;
    let ctx = EvalContext::new(train, &split.test);
    let infrequent = (0..train.n_users())
        .filter(|&u| train.user_degree(ganc::dataset::UserId(u)) < 10)
        .count();
    println!(
        "sparse corpus: {} users ({} with <10 train ratings), {} items, {} train ratings",
        train.n_users(),
        infrequent,
        train.n_items(),
        train.nnz()
    );

    let theta = GeneralizedConfig::default().estimate(train);
    let pop = MostPopular::fit(train);
    let rsvd = Rsvd::train(
        train,
        RsvdConfig {
            factors: 40,
            learning_rate: 0.01,
            reg: 0.01,
            epochs: 20,
            ..RsvdConfig::default()
        },
    );
    let psvd = Psvd::train(train, 32, 5);

    let mut rows: Vec<(String, TopN)> = Vec::new();
    for rec in [&pop as &dyn Recommender, &rsvd, &psvd] {
        rows.push((
            rec.name(),
            TopN::new(N, generate_topn_lists(rec, train, N, 4)),
        ));
    }
    // GANC with Pop as the plugged-in accuracy recommender (paper's sparse
    // recipe) — personalization enters purely through θ^G.
    let lists = GancBuilder::new(N)
        .coverage(CoverageKind::Dynamic)
        .accuracy_mode(AccuracyMode::TopNIndicator)
        .sample_size(150)
        .build_topn(&pop, &theta, train, 1)
        .into_lists();
    rows.push(("GANC(Pop, θG, Dyn)".into(), TopN::new(N, lists)));

    println!(
        "\n{:<20} {:>8} {:>8} {:>8} {:>8}",
        "model", "F@5", "LTAcc@5", "Cov@5", "Gini@5"
    );
    let mut table = Vec::new();
    for (name, topn) in &rows {
        let m = evaluate_topn(topn, &ctx);
        println!(
            "{name:<20} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
            m.f_measure, m.lt_accuracy, m.coverage, m.gini
        );
        table.push((name.clone(), m));
    }

    // The §V-B takeaways, asserted:
    let f = |n: &str| table.iter().find(|(name, _)| name == n).unwrap().1;
    let rsvd_m = f("RSVD");
    let pop_m = f("Pop");
    let ganc_m = f("GANC(Pop, θG, Dyn)");
    assert!(
        pop_m.f_measure > rsvd_m.f_measure,
        "in sparse settings the popularity baseline should out-rank MF re-use"
    );
    assert!(
        ganc_m.coverage > pop_m.coverage,
        "GANC must widen Pop's coverage"
    );
    println!(
        "\nPersonalizing the non-personalized Pop: coverage {:.4} → {:.4} at F@5 {:.4} (Pop alone: {:.4}).",
        pop_m.coverage, ganc_m.coverage, ganc_m.f_measure, pop_m.f_measure
    );
}
