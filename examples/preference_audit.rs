//! Preference audit (§II): estimate every long-tail preference model for a
//! user population, compare their distributions (Figure 2), and inspect a
//! few individual users to see *why* the generalized θ^G disagrees with
//! the simple measures.
//!
//! Run with: `cargo run --release --example preference_audit`

use ganc::dataset::stats::LongTail;
use ganc::dataset::synth::DatasetProfile;
use ganc::dataset::UserId;
use ganc::preference::kde::Kde;
use ganc::preference::simple::{histogram, theta_activity, theta_normalized};
use ganc::preference::tfidf::theta_tfidf;
use ganc::preference::GeneralizedConfig;

fn describe(label: &str, theta: &[f64]) {
    let n = theta.len() as f64;
    let mean = theta.iter().sum::<f64>() / n;
    let std = (theta.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / n).sqrt();
    let bars = histogram(theta, 20);
    let peak = *bars.iter().max().unwrap() as f64;
    let spark: String = bars
        .iter()
        .map(|&c| {
            const LEVELS: [char; 8] = [' ', '.', ':', '-', '=', '+', '*', '#'];
            LEVELS[((c as f64 / peak) * 7.0).round() as usize]
        })
        .collect();
    println!("{label:<4} mean {mean:.3}  std {std:.3}  [0 {spark} 1]");
}

fn main() {
    let data = DatasetProfile::medium().generate(77);
    let split = data.split_per_user(0.5, 5).unwrap();
    let train = &split.train;
    let lt = LongTail::pareto(train);
    println!(
        "{} users, {} items, long tail = {:.1}% of rated items\n",
        train.n_users(),
        train.n_items(),
        lt.percent_of(train)
    );

    let ta = theta_activity(train);
    let tn = theta_normalized(train, &lt);
    let tt = theta_tfidf(train);
    let result = GeneralizedConfig::default().run(train);
    println!(
        "θ^G optimization: {} iterations, final Δ {:.2e}\n",
        result.iterations, result.final_delta
    );
    let tg = &result.theta;

    println!("distribution audit (Figure 2 shape):");
    describe("θA", &ta);
    describe("θN", &tn);
    describe("θT", &tt);
    describe("θG", tg);

    // KDE over θ^G — what OSLG samples users from.
    let kde = Kde::fit(tg);
    println!(
        "\nKDE(θ^G): bandwidth {:.4}, density at mean {:.2}",
        kde.bandwidth(),
        kde.pdf(tg.iter().sum::<f64>() / tg.len() as f64)
    );

    // Spot-check users where the models disagree the most.
    let mut disagree: Vec<(u32, f64)> = (0..train.n_users())
        .map(|u| (u, (tn[u as usize] - tg[u as usize]).abs()))
        .collect();
    disagree.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nlargest θN vs θG disagreements:");
    println!(
        "{:>6} {:>9} {:>7} {:>7} {:>7} {:>7}",
        "user", "#ratings", "θA", "θN", "θT", "θG"
    );
    for &(u, _) in disagree.iter().take(5) {
        println!(
            "{:>6} {:>9} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
            u,
            train.user_degree(UserId(u)),
            ta[u as usize],
            tn[u as usize],
            tt[u as usize],
            tg[u as usize],
        );
    }
    println!(
        "\nθN only counts tail items; θG also weighs how *informative* each item is\n\
         (Eq. II.5-II.6), so users whose tail items are universally-liked mediocrities\n\
         move toward the population mean."
    );
}
