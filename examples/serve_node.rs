//! A self-contained serving-node demo with the full PR 6 observability
//! surface: fit a small bundle, stand up a θ-band sharded [`HttpServer`]
//! with an **adaptive background refit** (`--refit-cadence <ms>`), drive
//! traffic at it, and walk the three observability endpoints —
//! `/v1/metrics` (Prometheus text), `/v1/trace` (structured events), and
//! the expanded `/v1/stats` (rolling coverage / novelty / long-tail
//! windows).
//!
//! ```text
//! cargo run --release --example serve_node               # default 50ms cadence
//! cargo run --release --example serve_node -- --refit-cadence 200
//! ```
//!
//! The demo is self-terminating: it ingests enough interactions to trip
//! the adaptive cadence's volume threshold, waits for the background
//! controller to hot-swap a new generation, prints the endpoint excerpts,
//! and exits.

use ganc::core::coverage::CoverageKind;
use ganc::dataset::synth::DatasetProfile;
use ganc::dataset::Interactions;
use ganc::http::{Frontend, HttpClient, HttpServer, RefitHook, ServerConfig};
use ganc::preference::generalized::GeneralizedConfig;
use ganc::recommender::item_avg::ItemAvg;
use ganc::serve::refit::Refitter;
use ganc::serve::{CadenceConfig, FitConfig, FittedModel, ModelBundle, ShardConfig, ShardedEngine};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fit_cfg() -> FitConfig {
    FitConfig {
        coverage: CoverageKind::Dynamic,
        sample_size: 12,
        ..FitConfig::new(5)
    }
}

fn fitter() -> Arc<Refitter> {
    Arc::new(|train: &Interactions| {
        (
            FittedModel::ItemAvg(ItemAvg::fit(train, 5.0)),
            GeneralizedConfig::default().estimate(train),
        )
    })
}

fn main() {
    let mut cadence_ms = 50u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--refit-cadence" => {
                cadence_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--refit-cadence takes milliseconds");
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    // ---- fit a small sharded deployment ----
    let data = DatasetProfile::tiny().generate(7);
    let split = data.split_per_user(0.5, 3).unwrap();
    let train = split.train;
    let n_users = train.n_users();
    let (model, theta) = fitter()(&train);
    let bundle = ModelBundle::fit(model, theta, train, &fit_cfg());
    let engine = Arc::new(ShardedEngine::new(bundle, ShardConfig::quantile(3)));

    // ---- serve it, with a background adaptive refit controller ----
    // volume_threshold 32: the controller refits once 32 interactions
    // accumulate (and at most every min_interval) — no /admin/refit needed.
    let hook = RefitHook {
        fitter: fitter(),
        cfg: fit_cfg(),
        cadence: Some(CadenceConfig {
            volume_threshold: 32,
            min_interval: Duration::from_millis(cadence_ms),
            max_interval: Duration::from_secs(60),
        }),
    };
    let server = HttpServer::bind(
        Frontend::Sharded(Arc::clone(&engine)),
        Some(hook),
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    println!("serving on http://{addr} (refit cadence {cadence_ms}ms)\n");
    let mut client = HttpClient::new(addr);

    // ---- traffic: recommendations + enough ingests to trip the refit ----
    for u in 0..n_users {
        let resp = client
            .request("GET", &format!("/v1/recommend/{u}?n=5"), None)
            .unwrap();
        assert_eq!(resp.status, 200);
    }
    for k in 0..40u32 {
        let body = format!(
            "{{\"user\":{},\"item\":{},\"rating\":4.5}}",
            k % n_users,
            k % 7
        );
        let resp = client.request("POST", "/v1/ingest", Some(&body)).unwrap();
        assert_eq!(resp.status, 200);
    }

    // ---- wait for the background controller to hot-swap ----
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resp = client.request("GET", "/v1/healthz", None).unwrap();
        let health = tinyjson::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let generation = health["generation"].as_u64().unwrap();
        if generation > 0 {
            println!("healthz after background refit:\n  {}\n", body_of(&resp));
            break;
        }
        assert!(
            Instant::now() < deadline,
            "adaptive refit never swapped: {}",
            body_of(&resp)
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // ---- the observability surface ----
    let resp = client.request("GET", "/v1/stats", None).unwrap();
    println!(
        "stats (rolling windows + shard map):\n  {}\n",
        body_of(&resp)
    );

    let resp = client.request("GET", "/v1/metrics", None).unwrap();
    let metrics = body_of(&resp);
    println!(
        "metrics excerpt (full exposition is {} bytes):",
        metrics.len()
    );
    for line in metrics
        .lines()
        .filter(|l| {
            l.starts_with("ganc_engine_requests_total")
                || l.starts_with("ganc_window_coverage")
                || l.starts_with("ganc_refit_")
                || l.starts_with("ganc_http_requests_total")
        })
        .take(12)
    {
        println!("  {line}");
    }
    println!();

    let resp = client.request("GET", "/v1/trace", None).unwrap();
    let trace = tinyjson::from_str(&body_of(&resp)).unwrap();
    let events = trace["events"].as_array().unwrap();
    let kinds: Vec<&str> = events.iter().map(|e| e["kind"].as_str().unwrap()).collect();
    println!("trace drained {} events; kinds seen:", events.len());
    let mut seen: Vec<&str> = Vec::new();
    for k in kinds {
        if !seen.contains(&k) {
            seen.push(k);
        }
    }
    println!("  {}", seen.join(", "));
    assert!(
        seen.contains(&"refit_swapped"),
        "trace must record the background hot-swap lifecycle"
    );
    println!("\ndemo complete: background refit observed end to end.");
}

fn body_of(resp: &ganc::http::Response) -> String {
    String::from_utf8_lossy(&resp.body).into_owned()
}
