//! Quickstart: the full GANC pipeline in ~60 lines.
//!
//! 1. Generate a synthetic rating dataset with real-world popularity skew.
//! 2. Split per user, train a base recommender (RSVD matrix factorization).
//! 3. Learn every user's long-tail novelty preference θ^G from train data.
//! 4. Re-rank with GANC(RSVD, θ^G, Dyn) and compare against the raw model.
//!
//! Run with: `cargo run --release --example quickstart`

use ganc::core::{CoverageKind, GancBuilder};
use ganc::dataset::synth::DatasetProfile;
use ganc::metrics::{evaluate_topn, EvalContext, TopN};
use ganc::preference::GeneralizedConfig;
use ganc::recommender::rsvd::{Rsvd, RsvdConfig};
use ganc::recommender::topn::generate_topn_lists;

fn main() {
    // 1. Data: ~400 users with lognormal popularity skew (see
    //    DatasetProfile::ml_100k() etc. for the paper-calibrated versions).
    let data = DatasetProfile::small().generate(42);
    let split = data.split_per_user(0.5, 7).expect("valid split ratio");
    println!(
        "dataset: {} users, {} items, {} ratings ({:.2}% dense)",
        data.n_users(),
        data.n_items(),
        data.n_ratings(),
        data.density_percent()
    );

    // 2. Base accuracy recommender: L2-regularized MF trained with SGD.
    let rsvd = Rsvd::train(
        &split.train,
        RsvdConfig {
            factors: 16,
            epochs: 15,
            ..RsvdConfig::default()
        },
    );
    println!("RSVD test RMSE: {:.4}", rsvd.rmse(&split.test));

    // 3. Long-tail novelty preference per user (Eq. II.4-II.6).
    let theta = GeneralizedConfig::default().estimate(&split.train);
    let mean_theta = theta.iter().sum::<f64>() / theta.len() as f64;
    println!("mean θ^G: {mean_theta:.3}");

    // 4. GANC(RSVD, θ^G, Dyn) vs the raw RSVD ranking, top-10 each.
    let n = 10;
    let ctx = EvalContext::new(&split.train, &split.test);
    let raw = TopN::new(n, generate_topn_lists(&rsvd, &split.train, n, 4));
    let ganc = TopN::new(
        n,
        GancBuilder::new(n)
            .coverage(CoverageKind::Dynamic)
            .sample_size(100)
            .build_topn(&rsvd, &theta, &split.train, 0xC0FFEE)
            .into_lists(),
    );
    let m_raw = evaluate_topn(&raw, &ctx);
    let m_ganc = evaluate_topn(&ganc, &ctx);
    println!("\n{:<22} {:>9} {:>9}", "metric", "RSVD", "GANC");
    for (name, a, b) in [
        ("F-measure@10", m_raw.f_measure, m_ganc.f_measure),
        ("StratRecall@10", m_raw.strat_recall, m_ganc.strat_recall),
        ("LTAccuracy@10", m_raw.lt_accuracy, m_ganc.lt_accuracy),
        ("Coverage@10", m_raw.coverage, m_ganc.coverage),
        ("Gini@10 (lower=better)", m_raw.gini, m_ganc.gini),
    ] {
        println!("{name:<22} {a:>9.4} {b:>9.4}");
    }
    assert!(
        m_ganc.coverage > m_raw.coverage,
        "GANC should widen item-space coverage"
    );
    println!(
        "\nGANC covered {:.1}× more of the catalog.",
        m_ganc.coverage / m_raw.coverage.max(1e-9)
    );
}
