//! Dense-setting study (the §V-A scenario): a movie platform with an
//! ML-100K-shaped catalog compares its rating-prediction re-rankers.
//!
//! The operator already runs an RSVD rating predictor. Marketing wants more
//! of the catalog surfaced (coverage), users complain recommendations are
//! obvious (novelty), and product won't accept a large accuracy hit. This
//! example pits every re-ranking strategy from the paper against each other
//! on those three axes, exactly like Table IV.
//!
//! Run with: `cargo run --release --example movie_platform`

use ganc::core::{AccuracyMode, CoverageKind, GancBuilder};
use ganc::dataset::synth::DatasetProfile;
use ganc::metrics::{evaluate_topn, EvalContext, TopN};
use ganc::preference::tfidf::theta_tfidf;
use ganc::preference::GeneralizedConfig;
use ganc::recommender::rsvd::{Rsvd, RsvdConfig};
use ganc::recommender::topn::generate_topn_lists;
use ganc::rerank::five_d::FiveD;
use ganc::rerank::pra::Pra;
use ganc::rerank::rbt::{Rbt, RbtCriterion};
use ganc::rerank::{rerank_all, Reranker};

const N: usize = 5;

fn main() {
    // An ML-100K-like catalog, downscaled 4× to keep the example snappy.
    let mut profile = DatasetProfile::ml_100k();
    profile.n_users /= 4;
    profile.n_items /= 4;
    profile.target_ratings /= 16;
    let data = profile.generate(11);
    let split = data.split_per_user(profile.kappa, 3).unwrap();
    let train = &split.train;
    let ctx = EvalContext::new(train, &split.test);
    println!(
        "catalog: {} users × {} items, {} train ratings\n",
        train.n_users(),
        train.n_items(),
        train.nnz()
    );

    let rsvd = Rsvd::train(
        train,
        RsvdConfig {
            factors: 32,
            learning_rate: 0.03,
            reg: 0.05,
            epochs: 20,
            ..RsvdConfig::default()
        },
    );

    let mut report: Vec<(String, TopN)> = Vec::new();
    report.push((
        "RSVD (no re-ranking)".into(),
        TopN::new(N, generate_topn_lists(&rsvd, train, N, 4)),
    ));
    let rerankers: Vec<Box<dyn Reranker>> = vec![
        Box::new(Rbt::new(train, RbtCriterion::Popularity, "RSVD")),
        Box::new(Rbt::new(train, RbtCriterion::AverageRating, "RSVD")),
        Box::new(FiveD::new(train, "RSVD")),
        Box::new(FiveD::with_options(train, "RSVD", true, true)),
        Box::new(Pra::new(train, "RSVD", 10)),
    ];
    for rr in &rerankers {
        report.push((
            rr.name(),
            TopN::new(N, rerank_all(rr.as_ref(), &rsvd, train, N, 4)),
        ));
    }
    // GANC with both learned preference estimators.
    for (label, theta) in [
        ("θT", theta_tfidf(train)),
        ("θG", GeneralizedConfig::default().estimate(train)),
    ] {
        let lists = GancBuilder::new(N)
            .coverage(CoverageKind::Dynamic)
            .accuracy_mode(AccuracyMode::Normalized)
            .sample_size(120)
            .build_topn(&rsvd, &theta, train, 5)
            .into_lists();
        report.push((format!("GANC(RSVD, {label}, Dyn)"), TopN::new(N, lists)));
    }

    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "algorithm", "F@5", "SRec@5", "LTAcc@5", "Cov@5", "Gini@5"
    );
    for (name, topn) in &report {
        assert_eq!(topn.contract_violation(train), None, "{name}");
        let m = evaluate_topn(topn, &ctx);
        println!(
            "{name:<22} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
            m.f_measure, m.strat_recall, m.lt_accuracy, m.coverage, m.gini
        );
    }

    let base_cov = evaluate_topn(&report[0].1, &ctx).coverage;
    let ganc_cov = evaluate_topn(&report.last().unwrap().1, &ctx).coverage;
    println!(
        "\nGANC(θG) widened coverage {:.1}× over raw RSVD while re-ranking the same predictions.",
        ganc_cov / base_cov.max(1e-9)
    );
}
