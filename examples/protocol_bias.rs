//! Protocol bias demo (Appendix C): the same models, the same data, the
//! same metrics — and an order-of-magnitude accuracy swing caused purely by
//! **which items are ranked at test time**.
//!
//! The rated-test-items protocol only ranks the handful of items each user
//! happened to rate in the test set, so even *random* suggestions look
//! accurate; the all-unrated protocol ranks the entire unseen catalog, the
//! task a production system actually faces.
//!
//! Run with: `cargo run --release --example protocol_bias`

use ganc::dataset::synth::DatasetProfile;
use ganc::dataset::UserId;
use ganc::metrics::protocol::train_item_mask;
use ganc::metrics::{evaluate_topn, EvalContext, RankingProtocol, TopN};
use ganc::recommender::pop::MostPopular;
use ganc::recommender::random::RandomRec;
use ganc::recommender::rsvd::{Rsvd, RsvdConfig};
use ganc::recommender::topn::select_top_n;
use ganc::recommender::Recommender;

const N: usize = 5;

fn topn_under(
    rec: &dyn Recommender,
    split: &ganc::dataset::TrainTest,
    protocol: RankingProtocol,
) -> TopN {
    let train = &split.train;
    let mask = train_item_mask(train);
    let mut scores = vec![0.0f64; train.n_items() as usize];
    let mut cands: Vec<u32> = Vec::new();
    let lists = (0..train.n_users())
        .map(|u| {
            let u = UserId(u);
            rec.score_items(u, &mut scores);
            protocol.candidates(train, &split.test, &mask, u, &mut cands);
            select_top_n(&scores, cands.iter().copied(), N)
        })
        .collect();
    TopN::new(N, lists)
}

fn main() {
    let data = DatasetProfile::medium().generate(3);
    let split = data.split_per_user(0.5, 1).unwrap();
    let ctx = EvalContext::new(&split.train, &split.test);

    let rand = RandomRec::new(99);
    let pop = MostPopular::fit(&split.train);
    let rsvd = Rsvd::train(
        &split.train,
        RsvdConfig {
            factors: 16,
            epochs: 15,
            ..RsvdConfig::default()
        },
    );
    let models: Vec<&dyn Recommender> = vec![&rand, &pop, &rsvd];

    for protocol in [RankingProtocol::AllUnrated, RankingProtocol::RatedTestItems] {
        println!("\nprotocol: {}", protocol.label());
        println!(
            "{:<6} {:>12} {:>9} {:>9} {:>9}",
            "model", "Precision@5", "F@5", "Cov@5", "LTAcc@5"
        );
        for rec in &models {
            let topn = topn_under(*rec, &split, protocol);
            let m = evaluate_topn(&topn, &ctx);
            println!(
                "{:<6} {:>12.4} {:>9.4} {:>9.4} {:>9.4}",
                rec.name(),
                m.precision,
                m.f_measure,
                m.coverage,
                m.lt_accuracy
            );
        }
    }

    let rand_all = evaluate_topn(
        &topn_under(&rand, &split, RankingProtocol::AllUnrated),
        &ctx,
    );
    let rand_rated = evaluate_topn(
        &topn_under(&rand, &split, RankingProtocol::RatedTestItems),
        &ctx,
    );
    println!(
        "\nRandom suggestions scored {:.4} precision under rated-test-items vs {:.4}\n\
         under all-unrated — a {:.0}× inflation from the protocol alone. This is why\n\
         the paper (following Steck) evaluates with the all-unrated protocol.",
        rand_rated.precision,
        rand_all.precision,
        rand_rated.precision / rand_all.precision.max(1e-6)
    );
}
