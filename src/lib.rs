//! # ganc — facade crate
//!
//! Re-exports the public API of the whole workspace so downstream users can
//! depend on a single crate:
//!
//! * [`dataset`] — rating data, CSR interactions, splits, synthetic
//!   generators ([`ganc_dataset`])
//! * [`linalg`] — dense matrices and randomized truncated SVD
//!   ([`ganc_linalg`])
//! * [`metrics`] — the Table III metric suite and test ranking protocols
//!   ([`ganc_metrics`])
//! * [`preference`] — user long-tail novelty preference models θ
//!   ([`ganc_preference`])
//! * [`recommender`] — base recommenders: Pop, Rand, ItemAvg, RSVD, PSVD,
//!   RankMF ([`ganc_recommender`])
//! * [`core`] — the GANC framework and the OSLG optimizer ([`ganc_core`])
//! * [`rerank`] — the RBT / 5D / PRA baselines ([`ganc_rerank`])
//! * [`eval`] — the experiment harness regenerating every paper table and
//!   figure ([`ganc_eval`])
//!
//! ## Quickstart
//!
//! ```
//! use ganc::dataset::synth::DatasetProfile;
//! use ganc::preference::generalized::GeneralizedConfig;
//! use ganc::recommender::pop::MostPopular;
//! use ganc::core::{CoverageKind, GancBuilder};
//!
//! // 1. Data: a small synthetic catalog with real-world popularity skew.
//! let data = DatasetProfile::tiny().generate(42);
//! let split = data.split_per_user(0.5, 7).unwrap();
//!
//! // 2. Learn per-user long-tail preference θ^G from the train set.
//! let theta = GeneralizedConfig::default().estimate(&split.train);
//!
//! // 3. Re-rank a base recommender with GANC(ARec, θ^G, Dyn).
//! let arec = MostPopular::fit(&split.train);
//! let top = GancBuilder::new(10)
//!     .coverage(CoverageKind::Dynamic)
//!     .build_topn(&arec, &theta, &split.train, 0xC0FFEE);
//! assert_eq!(top.lists().len(), split.train.n_users() as usize);
//! ```

pub use ganc_core as core;
pub use ganc_dataset as dataset;
pub use ganc_eval as eval;
pub use ganc_linalg as linalg;
pub use ganc_metrics as metrics;
pub use ganc_preference as preference;
pub use ganc_recommender as recommender;
pub use ganc_rerank as rerank;
