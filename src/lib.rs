//! # ganc — facade crate
//!
//! Re-exports the public API of the whole workspace so downstream users can
//! depend on a single crate:
//!
//! * [`dataset`] — rating data, CSR interactions, splits, synthetic
//!   generators ([`ganc_dataset`])
//! * [`linalg`] — dense matrices and randomized truncated SVD
//!   ([`ganc_linalg`])
//! * [`metrics`] — the Table III metric suite and test ranking protocols
//!   ([`ganc_metrics`])
//! * [`preference`] — user long-tail novelty preference models θ
//!   ([`ganc_preference`])
//! * [`recommender`] — base recommenders: Pop, Rand, ItemAvg, RSVD, PSVD,
//!   RankMF ([`ganc_recommender`])
//! * [`core`] — the GANC framework and the OSLG optimizer ([`ganc_core`])
//! * [`rerank`] — the RBT / 5D / PRA baselines ([`ganc_rerank`])
//! * [`eval`] — the experiment harness regenerating every paper table and
//!   figure ([`ganc_eval`])
//! * [`serve`] — the online serving subsystem: model persistence, a
//!   per-request incremental query path, and a concurrent serving engine
//!   ([`ganc_serve`])
//! * [`http`] — the std-only HTTP/1.1 front-end: server, remote θ-band
//!   shard client, and multi-node router ([`ganc_http`])
//! * [`obs`] — the observability layer: lock-free metrics registry with
//!   Prometheus text exposition, trace-event ring buffer, and rolling
//!   beyond-accuracy windows ([`ganc_obs`])
//!
//! ## Quickstart
//!
//! ```
//! use ganc::dataset::synth::DatasetProfile;
//! use ganc::preference::generalized::GeneralizedConfig;
//! use ganc::recommender::pop::MostPopular;
//! use ganc::core::{CoverageKind, GancBuilder};
//!
//! // 1. Data: a small synthetic catalog with real-world popularity skew.
//! let data = DatasetProfile::tiny().generate(42);
//! let split = data.split_per_user(0.5, 7).unwrap();
//!
//! // 2. Learn per-user long-tail preference θ^G from the train set.
//! let theta = GeneralizedConfig::default().estimate(&split.train);
//!
//! // 3. Re-rank a base recommender with GANC(ARec, θ^G, Dyn).
//! let arec = MostPopular::fit(&split.train);
//! let top = GancBuilder::new(10)
//!     .coverage(CoverageKind::Dynamic)
//!     .build_topn(&arec, &theta, &split.train, 0xC0FFEE);
//! assert_eq!(top.lists().len(), split.train.n_users() as usize);
//! ```
//!
//! ## Serving: fit → save → load → serve
//!
//! Batch runs throw their trained state away; the serving subsystem
//! persists it and answers single-user requests online:
//!
//! ```
//! use ganc::dataset::synth::DatasetProfile;
//! use ganc::dataset::UserId;
//! use ganc::preference::generalized::GeneralizedConfig;
//! use ganc::recommender::pop::MostPopular;
//! use ganc::serve::{
//!     EngineConfig, FitConfig, FittedModel, ModelBundle, SaveLoad, ServingEngine,
//! };
//!
//! let data = DatasetProfile::tiny().generate(42);
//! let split = data.split_per_user(0.5, 7).unwrap();
//! let theta = GeneralizedConfig::default().estimate(&split.train);
//! let pop = MostPopular::fit(&split.train);
//!
//! // Fit once (OSLG sequential phase only), persist, reload, serve.
//! let cfg = FitConfig { sample_size: 20, ..FitConfig::new(10) };
//! let bundle = ModelBundle::fit(FittedModel::Pop(pop), theta, split.train, &cfg);
//! let restored = ModelBundle::from_bytes(&bundle.to_bytes().unwrap()).unwrap();
//! let engine = ServingEngine::new(restored, EngineConfig::default());
//! assert_eq!(engine.recommend(UserId(3)).unwrap().len(), 10);
//! ```

pub use ganc_core as core;
pub use ganc_dataset as dataset;
pub use ganc_eval as eval;
pub use ganc_http as http;
pub use ganc_linalg as linalg;
pub use ganc_metrics as metrics;
pub use ganc_obs as obs;
pub use ganc_preference as preference;
pub use ganc_recommender as recommender;
pub use ganc_rerank as rerank;
pub use ganc_serve as serve;
