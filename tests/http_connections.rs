//! The event-driven HTTP front-end's connection behavior (PR 9): timeout
//! evictions driven by a `ManualClock` (no sleeps deciding semantics —
//! real time only orders steps), slow-loris defense, the structural
//! connection ≫ worker decoupling, capacity rejection, and graceful
//! shutdown.
//!
//! The load-bearing test is [`connections_scale_far_beyond_worker_count`]:
//! with a compute pool of **one** worker, hundreds-to-thousands of
//! concurrent keep-alive connections are all served and all stay open.
//! Under the old worker-per-connection architecture this deadlocks at the
//! second connection (the lone worker camps on the first keep-alive
//! socket), so the test is a structural proof that connection concurrency
//! is no longer coupled to `ServerConfig::workers`.

use ganc::core::coverage::CoverageKind;
use ganc::dataset::synth::DatasetProfile;
use ganc::http::{Frontend, HttpClient, HttpServer, ServerConfig};
use ganc::obs::{Clock, ManualClock, ObsHub, TraceData};
use ganc::preference::generalized::GeneralizedConfig;
use ganc::recommender::pop::MostPopular;
use ganc::serve::{EngineConfig, FitConfig, FittedModel, ModelBundle, ServingEngine};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fixture_engine() -> Arc<ServingEngine> {
    let data = DatasetProfile::tiny().generate(7);
    let split = data.split_per_user(0.5, 3).unwrap();
    let theta = GeneralizedConfig::default().estimate(&split.train);
    let pop = MostPopular::fit(&split.train);
    let cfg = FitConfig {
        coverage: CoverageKind::Dynamic,
        sample_size: 12,
        ..FitConfig::new(5)
    };
    Arc::new(ServingEngine::new(
        ModelBundle::fit(FittedModel::Pop(pop), theta, split.train, &cfg),
        EngineConfig::default(),
    ))
}

fn bind(cfg: ServerConfig) -> HttpServer {
    HttpServer::bind(Frontend::Single(fixture_engine()), None, cfg, "127.0.0.1:0").unwrap()
}

fn manual_hub() -> (Arc<ManualClock>, Arc<ObsHub>) {
    let clock = Arc::new(ManualClock::new());
    let hub = ObsHub::with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
    (clock, hub)
}

/// Real time only *orders* steps (lets the event loop catch up); all
/// timeout semantics run on the `ManualClock`.
fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The value of the first rendered sample whose series starts with
/// `needle` (e.g. `name{label="x"}`), or 0.0 when absent.
fn sample(hub: &ObsHub, needle: &str) -> f64 {
    hub.metrics
        .render()
        .lines()
        .find(|l| l.starts_with(needle))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0)
}

const HEALTHZ: &[u8] = b"GET /v1/healthz HTTP/1.1\r\n\r\n";

/// Read one response off the wire; errors on EOF before a full response.
fn read_response(reader: &mut BufReader<&TcpStream>) -> std::io::Result<(u16, Vec<u8>)> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before a response",
        ));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("malformed status line")
        .parse()
        .expect("non-numeric status");
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("bad content-length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, body))
}

/// True once `stream` reaches EOF (the server closed it). Bounded by a
/// real-time read timeout so a missed eviction fails loudly, not by hang.
fn assert_server_closed(stream: &TcpStream, what: &str) {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut scratch = [0u8; 64];
    loop {
        match (&*stream).read(&mut scratch) {
            Ok(0) => return,
            Ok(_) => continue, // stray bytes before the close
            Err(e) => panic!("expected server-side close for {what}, got {e}"),
        }
    }
}

/// An idle keep-alive connection is evicted exactly when the hub clock
/// crosses `read_timeout` — silently (no response bytes), counted under
/// `reason="idle"`, and visible as `conn_accept`/`conn_evict` trace
/// events.
#[test]
fn idle_keep_alive_connection_is_evicted_on_the_manual_clock() {
    let (clock, hub) = manual_hub();
    let cfg = ServerConfig {
        read_timeout: Duration::from_secs(5),
        obs: Some(Arc::clone(&hub)),
        ..ServerConfig::default()
    };
    let server = bind(cfg);
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(&stream);
    (&stream).write_all(HEALTHZ).unwrap();
    let (status, body) = read_response(&mut reader).unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, b"{\"ok\":true,\"generation\":0}");

    // Served and now idle: the connection survives as long as the clock
    // stands still…
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(
        sample(&hub, "ganc_http_conn_evicted_total"),
        0.0,
        "a frozen clock must never evict"
    );

    // …and dies as soon as it crosses the progress timeout.
    clock.advance(Duration::from_secs(6));
    wait_until(
        || sample(&hub, "ganc_http_conn_evicted_total{reason=\"idle\"}") >= 1.0,
        "idle eviction counter",
    );
    assert_server_closed(&stream, "idle keep-alive eviction");

    let events = hub.trace.drain();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.data, TraceData::ConnAccept { .. })),
        "accept must leave a trace event"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.data, TraceData::ConnEvict { reason: "idle", .. })),
        "eviction must leave a typed trace event"
    );
}

/// A slow-loris peer trickling one header byte per window dodges the
/// progress timeout forever; `request_deadline` caps the request's total
/// read time and evicts it anyway (reason `deadline`, no response).
#[test]
fn slow_loris_trickle_is_evicted_at_the_request_deadline() {
    let (clock, hub) = manual_hub();
    let cfg = ServerConfig {
        read_timeout: Duration::from_secs(10),
        request_deadline: Duration::from_secs(30),
        obs: Some(Arc::clone(&hub)),
        ..ServerConfig::default()
    };
    let server = bind(cfg);
    let stream = TcpStream::connect(server.local_addr()).unwrap();

    // One byte every 8 hub-seconds: always under the 10s progress
    // timeout, never completing a head. The sleeps only let the event
    // loop consume each byte before the clock moves.
    for (i, byte) in [b'G', b'E', b'T'].into_iter().enumerate() {
        (&stream).write_all(&[byte]).unwrap();
        std::thread::sleep(Duration::from_millis(40));
        clock.advance(Duration::from_secs(8));
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(
            sample(&hub, "ganc_http_conn_evicted_total"),
            0.0,
            "trickle at {}s is under both timeouts",
            (i + 1) * 8
        );
    }
    // Byte 4 at t=24s, then the clock passes the 30s total deadline.
    (&stream).write_all(b" ").unwrap();
    std::thread::sleep(Duration::from_millis(40));
    clock.advance(Duration::from_secs(8));
    wait_until(
        || sample(&hub, "ganc_http_conn_evicted_total{reason=\"deadline\"}") >= 1.0,
        "slow-loris deadline eviction",
    );
    assert_server_closed(&stream, "slow-loris eviction");
}

/// The deadline is not trigger-happy: a request whose head arrives in two
/// installments inside the deadline is served normally, and the
/// connection stays open for the next one.
#[test]
fn split_request_completing_within_deadline_is_served() {
    let (clock, hub) = manual_hub();
    let cfg = ServerConfig {
        read_timeout: Duration::from_secs(10),
        request_deadline: Duration::from_secs(30),
        obs: Some(Arc::clone(&hub)),
        ..ServerConfig::default()
    };
    let server = bind(cfg);
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(&stream);

    let (first, rest) = HEALTHZ.split_at(9);
    (&stream).write_all(first).unwrap();
    std::thread::sleep(Duration::from_millis(40));
    clock.advance(Duration::from_secs(8));
    std::thread::sleep(Duration::from_millis(40));
    (&stream).write_all(rest).unwrap();
    let (status, _) = read_response(&mut reader).unwrap();
    assert_eq!(status, 200);
    assert_eq!(sample(&hub, "ganc_http_conn_evicted_total"), 0.0);

    // Keep-alive: the same connection serves the next request whole.
    (&stream).write_all(HEALTHZ).unwrap();
    let (status, _) = read_response(&mut reader).unwrap();
    assert_eq!(status, 200);
}

/// Structural decoupling proof: with a compute pool of ONE worker, far
/// more concurrent keep-alive connections than workers are all served —
/// twice, to prove they stay open concurrently — and the per-state
/// connection gauges account for every one of them. Scale defaults to
/// 1200 live connections and can be raised via `GANC_CONN_SCALE` (e.g.
/// 10000 where the fd limit allows ~2× that, client + server side).
#[test]
fn connections_scale_far_beyond_worker_count() {
    let n: usize = std::env::var("GANC_CONN_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1200);
    let hub = ObsHub::new();
    let cfg = ServerConfig {
        workers: 1,
        // Real clock: keep every timeout far away from the test's runtime.
        read_timeout: Duration::from_secs(3600),
        request_deadline: Duration::from_secs(3600),
        max_connections: n + 64,
        obs: Some(Arc::clone(&hub)),
        ..ServerConfig::default()
    };
    let server = bind(cfg);
    let addr = server.local_addr().to_string();

    let mut clients: Vec<HttpClient> = (0..n).map(|_| HttpClient::new(addr.clone())).collect();
    for (i, client) in clients.iter_mut().enumerate() {
        let resp = client.request("GET", "/v1/healthz", None).unwrap();
        assert_eq!(resp.status, 200, "connection {i} of {n}");
    }
    // Every connection is still open: the gauges see all N parked in
    // `reading`, none waiting on the lone worker.
    wait_until(
        || sample(&hub, "ganc_http_connections{state=\"reading\"}") >= n as f64,
        "all connections parked in reading state",
    );
    assert_eq!(sample(&hub, "ganc_http_conn_accepted_total"), n as f64);
    assert_eq!(sample(&hub, "ganc_http_conn_evicted_total"), 0.0);

    // Second pass over the *same* sockets: N concurrent keep-alive
    // connections served again through one worker. Under the old
    // worker-per-connection design this is where connection 2 starves.
    for (i, client) in clients.iter_mut().enumerate() {
        let resp = client.request("GET", "/v1/healthz", None).unwrap();
        assert_eq!(resp.status, 200, "second pass, connection {i}");
        assert_eq!(resp.body, b"{\"ok\":true,\"generation\":0}");
    }
}

/// Accepts beyond `max_connections` are closed immediately and accounted
/// as `capacity` evictions; established connections are unaffected.
#[test]
fn connections_beyond_capacity_are_rejected_not_queued() {
    let (_clock, hub) = manual_hub();
    let cfg = ServerConfig {
        max_connections: 2,
        obs: Some(Arc::clone(&hub)),
        ..ServerConfig::default()
    };
    let server = bind(cfg);

    let keep: Vec<TcpStream> = (0..2)
        .map(|_| {
            let stream = TcpStream::connect(server.local_addr()).unwrap();
            let mut reader = BufReader::new(&stream);
            (&stream).write_all(HEALTHZ).unwrap();
            assert_eq!(read_response(&mut reader).unwrap().0, 200);
            stream
        })
        .collect();

    let overflow = TcpStream::connect(server.local_addr()).unwrap();
    wait_until(
        || sample(&hub, "ganc_http_conn_evicted_total{reason=\"capacity\"}") >= 1.0,
        "capacity eviction",
    );
    assert_server_closed(&overflow, "capacity overflow");

    // The two established connections still serve.
    for stream in &keep {
        let mut reader = BufReader::new(stream);
        (&*stream).write_all(HEALTHZ).unwrap();
        assert_eq!(read_response(&mut reader).unwrap().0, 200);
    }
}

/// Graceful shutdown closes idle keep-alive connections (traced as
/// `shutdown` evictions), stops accepting, and joins the event loop and
/// every worker — promptly, not at the drain cap.
#[test]
fn graceful_shutdown_closes_idle_connections_and_joins() {
    let (_clock, hub) = manual_hub();
    let cfg = ServerConfig {
        obs: Some(Arc::clone(&hub)),
        ..ServerConfig::default()
    };
    let mut server = bind(cfg);
    let addr = server.local_addr();

    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(&stream);
    (&stream).write_all(HEALTHZ).unwrap();
    assert_eq!(read_response(&mut reader).unwrap().0, 200);

    let begun = Instant::now();
    server.shutdown();
    assert!(
        begun.elapsed() < Duration::from_secs(4),
        "an idle connection must not hold shutdown to the drain cap"
    );
    assert_server_closed(&stream, "shutdown drain");
    assert!(
        sample(&hub, "ganc_http_conn_evicted_total{reason=\"shutdown\"}") >= 1.0,
        "shutdown evictions are accounted"
    );
    assert!(
        TcpStream::connect(addr).map_or(true, |s| {
            let mut reader = BufReader::new(&s);
            (&s).write_all(HEALTHZ).ok();
            read_response(&mut reader).is_err()
        }),
        "a stopped server must not serve new connections"
    );
}
