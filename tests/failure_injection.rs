//! Failure-injection tests: degenerate inputs every layer must survive —
//! empty users, single-item catalogs, constant ratings, exhausted
//! candidate pools, κ edge cases, and users missing from test.

use ganc::core::{CoverageKind, GancBuilder};
use ganc::dataset::dataset::{DatasetBuilder, RatingScale};
use ganc::dataset::{Interactions, ItemId, UserId};
use ganc::metrics::{evaluate_topn, EvalContext, TopN};
use ganc::preference::simple::theta_constant;
use ganc::preference::tfidf::theta_tfidf;
use ganc::preference::GeneralizedConfig;
use ganc::recommender::pop::MostPopular;
use ganc::recommender::rsvd::{Rsvd, RsvdConfig};
use ganc::recommender::topn::generate_topn_lists;

/// A catalog with exactly one item.
#[test]
fn single_item_catalog() {
    let mut b = DatasetBuilder::new("one", RatingScale::stars_1_5());
    for u in 0..4u32 {
        b.push(UserId(u), ItemId(0), 4.0).unwrap();
    }
    let d = b.build().unwrap();
    let split = d.split_per_user(1.0, 1).unwrap();
    let pop = MostPopular::fit(&split.train);
    let lists = generate_topn_lists(&pop, &split.train, 5, 2);
    // everyone has seen the only item → all lists empty, nothing panics
    assert!(lists.iter().all(|l| l.is_empty()));
    let theta = GeneralizedConfig::default().estimate(&split.train);
    let top = GancBuilder::new(5)
        .sample_size(2)
        .build_topn(&pop, &theta, &split.train, 1);
    assert!(top.lists().iter().all(|l| l.is_empty()));
}

/// Users present in the id space but with no train ratings.
#[test]
fn users_with_no_train_ratings() {
    let mut b = DatasetBuilder::new("gaps", RatingScale::stars_1_5());
    b.push(UserId(0), ItemId(0), 4.0).unwrap();
    b.push(UserId(0), ItemId(1), 4.0).unwrap();
    b.push(UserId(5), ItemId(1), 5.0).unwrap(); // users 1..4 are empty
    let d = b.build().unwrap();
    let m = d.interactions();
    let pop = MostPopular::fit(&m);
    let lists = generate_topn_lists(&pop, &m, 2, 3);
    assert_eq!(lists.len(), 6);
    // empty users still get recommendations (they have seen nothing)
    assert_eq!(lists[2].len(), 2);
    // preference estimators return 0 for empty users and stay bounded
    let theta = GeneralizedConfig::default().estimate(&m);
    assert_eq!(theta[2], 0.0);
    let tt = theta_tfidf(&m);
    assert_eq!(tt[3], 0.0);
}

/// Every rating identical: zero-variance everything.
#[test]
fn constant_ratings_everywhere() {
    let mut b = DatasetBuilder::new("flat", RatingScale::stars_1_5());
    for u in 0..6u32 {
        for i in 0..5u32 {
            if (u + i) % 2 == 0 {
                b.push(UserId(u), ItemId(i), 3.0).unwrap();
            }
        }
    }
    let d = b.build().unwrap();
    let split = d.split_per_user(0.5, 2).unwrap();
    let theta = GeneralizedConfig::default().estimate(&split.train);
    assert!(theta.iter().all(|t| t.is_finite()));
    let rsvd = Rsvd::train(
        &split.train,
        RsvdConfig {
            factors: 4,
            epochs: 5,
            ..RsvdConfig::default()
        },
    );
    assert!(rsvd.rmse(&split.test).is_finite());
    let ctx = EvalContext::new(&split.train, &split.test);
    let topn = TopN::new(3, generate_topn_lists(&rsvd, &split.train, 3, 2));
    let m = evaluate_topn(&topn, &ctx);
    assert!(m.gini.is_finite() && m.coverage > 0.0);
}

/// Extreme κ values at the boundary of the accepted range.
#[test]
fn kappa_boundaries() {
    let mut b = DatasetBuilder::new("k", RatingScale::stars_1_5());
    for u in 0..3u32 {
        for i in 0..10u32 {
            b.push(UserId(u), ItemId(i), 4.0).unwrap();
        }
    }
    let d = b.build().unwrap();
    // κ→0⁺ keeps the one-rating floor
    let s = d.split_per_user(1e-9, 1).unwrap();
    for u in 0..3u32 {
        assert_eq!(s.train.user_degree(UserId(u)), 1);
        assert_eq!(s.test.user_degree(UserId(u)), 9);
    }
    // κ=1 keeps everything
    let s = d.split_per_user(1.0, 1).unwrap();
    assert_eq!(s.test.nnz(), 0);
    // metrics on an empty test set are all zero, not NaN
    let ctx = EvalContext::new(&s.train, &s.test);
    let pop = MostPopular::fit(&s.train);
    let topn = TopN::new(3, generate_topn_lists(&pop, &s.train, 3, 2));
    let m = evaluate_topn(&topn, &ctx);
    assert_eq!(m.precision, 0.0);
    assert_eq!(m.recall, 0.0);
    assert!(m.gini.is_finite());
}

/// GANC with every θ at the extremes.
#[test]
fn theta_extremes_are_safe() {
    let mut b = DatasetBuilder::new("x", RatingScale::stars_1_5());
    for u in 0..10u32 {
        for i in 0..8u32 {
            if (u * 3 + i) % 4 != 0 {
                b.push(UserId(u), ItemId(i), 1.0 + ((u + i) % 5) as f32)
                    .unwrap();
            }
        }
    }
    let d = b.build().unwrap();
    let m = d.interactions();
    let pop = MostPopular::fit(&m);
    for c in [0.0, 1.0] {
        let theta = theta_constant(m.n_users(), c);
        for kind in [
            CoverageKind::Random,
            CoverageKind::Static,
            CoverageKind::Dynamic,
        ] {
            let top = GancBuilder::new(3)
                .coverage(kind)
                .sample_size(4)
                .build_topn(&pop, &theta, &m, 7);
            assert_eq!(top.lists().len(), m.n_users() as usize);
        }
    }
}

/// A test set mentioning items that never occur in train.
#[test]
fn test_only_items_do_not_break_metrics() {
    let mut tr = DatasetBuilder::new("tr", RatingScale::stars_1_5());
    tr.push(UserId(0), ItemId(0), 5.0).unwrap();
    tr.push(UserId(1), ItemId(1), 5.0).unwrap();
    let train = {
        let d = tr.build().unwrap();
        Interactions::from_ratings(2, 4, d.ratings())
    };
    let mut te = DatasetBuilder::new("te", RatingScale::stars_1_5());
    te.push(UserId(0), ItemId(3), 5.0).unwrap(); // item 3 absent from train
    let test = {
        let d = te.build().unwrap();
        Interactions::from_ratings(2, 4, d.ratings())
    };
    let ctx = EvalContext::new(&train, &test);
    // A list that hits the zero-popularity relevant item: stratified recall
    // must treat f=0 as f=1 rather than dividing by zero.
    let topn = TopN::new(1, vec![vec![ItemId(3)], vec![]]);
    let m = evaluate_topn(&topn, &ctx);
    assert!((m.strat_recall - 1.0).abs() < 1e-9);
    assert!(m.precision.is_finite());
}
