//! The PR 6 observability layer, locked down end to end: histogram
//! accounting and Prometheus exposition round-trips (property-tested),
//! rolling beyond-accuracy windows proven against a from-scratch oracle
//! under a `ManualClock` (exact boundary expiry included), and the HTTP
//! surface — `/v1/metrics`, `/v1/trace`, the expanded `/v1/stats`, and
//! `/v1/healthz` with a live background adaptive-refit controller.

use ganc::core::coverage::CoverageKind;
use ganc::core::query::{band_bounds, cut_theta_bands, shard_of};
use ganc::dataset::synth::DatasetProfile;
use ganc::dataset::{Interactions, ItemId, UserId};
use ganc::http::testing::{FlakyPeer, GatedPeer};
use ganc::http::{
    CoalescedShard, Frontend, HttpClient, HttpServer, PeerTransport, RefitHook, RemoteShard,
    ReplicaConfig, ReplicaSet, RouterNode, ServerConfig, ShardRoute,
};
use ganc::obs::{
    bucket_bounds_us, CatalogProfile, Clock, ManualClock, MetricsRegistry, ObsHub, RollingWindow,
};
use ganc::preference::generalized::GeneralizedConfig;
use ganc::recommender::item_avg::ItemAvg;
use ganc::serve::refit::Refitter;
use ganc::serve::{
    BatchConfig, CadenceConfig, DurableConfig, EngineConfig, FitConfig, FittedModel, ModelBundle,
    ServingEngine, ShardConfig, ShardedEngine,
};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;
use tinyjson::Value;

const N: usize = 5;

fn fit_cfg() -> FitConfig {
    FitConfig {
        coverage: CoverageKind::Dynamic,
        sample_size: 12,
        ..FitConfig::new(N)
    }
}

fn fitter() -> Arc<Refitter> {
    Arc::new(|train: &Interactions| {
        (
            FittedModel::ItemAvg(ItemAvg::fit(train, 5.0)),
            GeneralizedConfig::default().estimate(train),
        )
    })
}

fn fixture_bundle(seed: u64) -> ModelBundle {
    let data = DatasetProfile::tiny().generate(seed);
    let split = data.split_per_user(0.5, 3).unwrap();
    let (model, theta) = fitter()(&split.train);
    ModelBundle::fit(model, theta, split.train, &fit_cfg())
}

fn manual_hub() -> (Arc<ManualClock>, Arc<ObsHub>) {
    let clock = Arc::new(ManualClock::new());
    let hub = ObsHub::with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
    (clock, hub)
}

fn get_json(client: &mut HttpClient, path: &str) -> Value {
    let resp = client.request("GET", path, None).unwrap();
    assert_eq!(resp.status, 200, "{path}");
    tinyjson::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap()
}

// ---------------------------------------------------------------- metrics

proptest! {
    /// Every observation lands in exactly one bucket: per-bucket counts sum
    /// to the observation count, and the +Inf bucket exists so the
    /// cumulative rendering always converges to `_count`.
    #[test]
    fn histogram_buckets_sum_to_observation_count(
        values in proptest::collection::vec(0u64..50_000_000, 1..200),
    ) {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("t_sum_us", "bucket accounting", &[]);
        let mut sum = 0u64;
        for &v in &values {
            h.observe_us(v);
            sum += v;
        }
        let counts = h.bucket_counts();
        prop_assert_eq!(counts.iter().sum::<u64>(), values.len() as u64);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum_us(), sum);
        // Each value must sit in the first bucket whose bound holds it.
        let bounds = bucket_bounds_us();
        for &v in &values {
            let j = bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len());
            prop_assert!(counts[j] > 0, "value {} missing from bucket {}", v, j);
        }
    }
}

/// A minimal Prometheus text parser: `name{labels} value` / `name value`
/// sample lines plus `# HELP` / `# TYPE` comments. Returns (name, labels,
/// value) triples.
fn parse_prometheus(text: &str) -> Vec<(String, String, f64)> {
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let kind = parts.next().unwrap();
            assert!(
                kind == "HELP" || kind == "TYPE",
                "unknown comment kind in {line:?}"
            );
            assert!(parts.next().is_some(), "comment names a metric: {line:?}");
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        let value: f64 = value.parse().unwrap_or_else(|_| {
            if value == "+Inf" {
                f64::INFINITY
            } else {
                panic!("unparseable sample value {value:?} in {line:?}")
            }
        });
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                assert!(rest.ends_with('}'), "unterminated label set in {line:?}");
                (name.to_string(), rest[..rest.len() - 1].to_string())
            }
            None => (series.to_string(), String::new()),
        };
        assert!(
            name.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_'),
            "invalid metric name {name:?}"
        );
        samples.push((name, labels, value));
    }
    samples
}

proptest! {
    /// The registry's Prometheus rendering is parseable, deterministic, and
    /// faithful: counter/gauge values survive the round-trip, histogram
    /// `_bucket` series are cumulative and monotonically non-decreasing in
    /// `le` order, and the +Inf bucket equals `_count`.
    #[test]
    fn prometheus_render_round_trips(
        counts in proptest::collection::vec(0u64..10_000, 1..5),
        gauge_value in -1.0e6..1.0e6f64,
        observations in proptest::collection::vec(0u64..100_000_000, 0..100),
    ) {
        let registry = MetricsRegistry::new();
        for (j, &c) in counts.iter().enumerate() {
            let band = j.to_string();
            registry
                .counter("t_requests_total", "test counter", &[("band", &band)])
                .add(c);
        }
        registry.gauge("t_gauge", "test gauge", &[]).set(gauge_value);
        let h = registry.histogram("t_lat_us", "test histogram", &[("stage", "x")]);
        for &v in &observations {
            h.observe_us(v);
        }

        let text = registry.render();
        prop_assert_eq!(&text, &registry.render(), "rendering must be deterministic");
        let samples = parse_prometheus(&text);

        for (j, &c) in counts.iter().enumerate() {
            let labels = format!("band=\"{j}\"");
            let got = samples
                .iter()
                .find(|(n, l, _)| n == "t_requests_total" && *l == labels)
                .map(|&(_, _, v)| v);
            prop_assert_eq!(got, Some(c as f64));
        }
        let gauge = samples.iter().find(|(n, _, _)| n == "t_gauge").unwrap().2;
        prop_assert!((gauge - gauge_value).abs() <= 1e-6 * gauge_value.abs().max(1.0));

        let buckets: Vec<f64> = samples
            .iter()
            .filter(|(n, _, _)| n == "t_lat_us_bucket")
            .map(|&(_, _, v)| v)
            .collect();
        prop_assert!(
            buckets.windows(2).all(|w| w[0] <= w[1]),
            "cumulative buckets must be non-decreasing: {:?}",
            buckets
        );
        let count = samples.iter().find(|(n, _, _)| n == "t_lat_us_count").unwrap().2;
        prop_assert_eq!(*buckets.last().unwrap(), count);
        prop_assert_eq!(count, observations.len() as f64);
        let sum = samples.iter().find(|(n, _, _)| n == "t_lat_us_sum").unwrap().2;
        prop_assert_eq!(sum, observations.iter().sum::<u64>() as f64);
    }
}

// ---------------------------------------------------------------- windows

/// An entry observed at `t` with window `w` serves stats for every query
/// in `[t, t+w)` and is gone at exactly `t + w` — not an instant later.
#[test]
fn rolling_window_expires_exactly_at_boundary() {
    let catalog = CatalogProfile::new(vec![1_000_000; 4], vec![false; 4]);
    let mut window = RollingWindow::new(Duration::from_micros(100), 4);
    window.observe(0, &[0, 1], &catalog);
    window.observe(40, &[2], &catalog);
    assert_eq!(window.stats(0).lists, 2);
    assert_eq!(window.stats(99).lists, 2, "one tick before expiry");
    let at_100 = window.stats(100);
    assert_eq!(at_100.lists, 1, "entry at t=0 expires exactly at t=100");
    assert_eq!(at_100.coverage, 0.25, "only item 2 remains");
    assert_eq!(window.stats(139).lists, 1);
    assert_eq!(window.stats(140).lists, 0, "entry at t=40 expires at t=140");
}

/// From-scratch oracle for one window state: recompute coverage, mean
/// novelty, and long-tail share over exactly the live lists.
fn oracle_stats(live: &[&Vec<u32>], catalog: &CatalogProfile) -> (f64, f64, f64, u64) {
    let mut distinct = BTreeSet::new();
    let mut items = 0u64;
    let mut novelty_sum = 0.0f64;
    let mut tail_hits = 0u64;
    for list in live {
        for &i in *list {
            distinct.insert(i);
            items += 1;
            novelty_sum += catalog.novelty_microbits(i) as f64 / 1e6;
            if catalog.is_tail(i) {
                tail_hits += 1;
            }
        }
    }
    let coverage = distinct.len() as f64 / catalog.n_items() as f64;
    let novelty = if items == 0 {
        0.0
    } else {
        novelty_sum / items as f64
    };
    let tail = if items == 0 {
        0.0
    } else {
        tail_hits as f64 / items as f64
    };
    (coverage, novelty, tail, items)
}

proptest! {
    /// The O(1)-amortized incremental window equals a from-scratch
    /// recompute over the live entries, for arbitrary lists, arrival
    /// times, and query times — and the novelty convention matches the
    /// paper-metric formula (`-log2 p`, `p` floored at `1/(|U|+1)` for
    /// unseen items) used by `ganc::metrics`.
    #[test]
    fn rolling_window_matches_from_scratch_oracle(
        popularity in proptest::collection::vec(0u32..50, 8..20),
        lists in proptest::collection::vec(
            proptest::collection::vec(0u32..8, 1..6),
            1..30,
        ),
        gaps in proptest::collection::vec(0u64..40, 1..30),
        query_offset in 0u64..120,
        window_us in 1u64..100,
    ) {
        let n_users = 100u32;
        let n_items = popularity.len();
        let tail: Vec<bool> = (0..n_items).map(|i| i % 3 == 0).collect();
        let catalog = CatalogProfile::from_popularity(&popularity, n_users, tail);

        // Cross-check the frozen novelty attribution against the metric
        // formula the paper's tables use.
        for (i, &f) in popularity.iter().enumerate() {
            let p = if f == 0 {
                1.0 / (n_users as f64 + 1.0)
            } else {
                f as f64 / n_users as f64
            };
            let expect = (-p.log2() * 1e6).round() as u64;
            prop_assert_eq!(catalog.novelty_microbits(i as u32), expect);
        }

        let mut window = RollingWindow::new(Duration::from_micros(window_us), n_items);
        let mut at = 0u64;
        let mut arrivals: Vec<(u64, Vec<u32>)> = Vec::new();
        for (list, &gap) in lists.iter().zip(gaps.iter().cycle()) {
            at += gap;
            // Clamp list entries so they only reference catalog items.
            let list: Vec<u32> = list.iter().map(|&i| i % n_items as u32).collect();
            window.observe(at, &list, &catalog);
            arrivals.push((at, list));
        }
        let now = at + query_offset;
        let live: Vec<&Vec<u32>> = arrivals
            .iter()
            .filter(|(t, _)| t + window_us > now)
            .map(|(_, l)| l)
            .collect();
        let (coverage, novelty, tail_share, items) = oracle_stats(&live, &catalog);

        let got = window.stats(now);
        prop_assert_eq!(got.lists, live.len() as u64);
        prop_assert_eq!(got.items, items);
        prop_assert_eq!(got.coverage, coverage, "coverage is an exact rational");
        prop_assert!((got.mean_novelty_bits - novelty).abs() < 1e-9);
        prop_assert_eq!(got.long_tail_share, tail_share);
    }
}

/// Engine-level windows under an injected `ManualClock`: lists served now
/// are visible, and advancing the clock past the window expires them all —
/// deterministic, no sleeps.
#[test]
fn engine_window_stats_deterministic_under_manual_clock() {
    let bundle = fixture_bundle(21);
    let n_users = bundle.n_users();
    let engine = ServingEngine::new(bundle, EngineConfig::default());
    let (clock, hub) = manual_hub();
    engine.attach_obs(Arc::clone(&hub), None, Duration::from_micros(1_000));

    let mut union: BTreeSet<u32> = BTreeSet::new();
    for u in 0..n_users {
        let list = engine.recommend(UserId(u)).unwrap();
        union.extend(list.iter().map(|i| i.0));
    }
    let stats = engine.window_stats().expect("obs attached at bind");
    assert_eq!(stats.lists, n_users as u64);
    assert_eq!(stats.items, (n_users as usize * N) as u64);
    assert!(stats.coverage > 0.0);

    clock.advance(Duration::from_micros(999));
    assert_eq!(
        engine.window_stats().unwrap().lists,
        n_users as u64,
        "still inside the window"
    );
    clock.advance(Duration::from_micros(1));
    let expired = engine.window_stats().unwrap();
    assert_eq!(expired.lists, 0, "whole window expires at the boundary");
    assert_eq!(expired.coverage, 0.0);
}

/// The sharded aggregate is a true cross-band union — distinct items are
/// deduplicated across bands, not averaged — and per-band list counts sum.
#[test]
fn sharded_window_aggregate_matches_union_oracle() {
    let bundle = fixture_bundle(33);
    let n_users = bundle.n_users();
    let n_items = bundle.n_items() as usize;
    let engine = ShardedEngine::new(bundle, ShardConfig::quantile(3));
    let (_clock, hub) = manual_hub();
    engine.attach_obs(Arc::clone(&hub), Duration::from_secs(60));

    let mut union: BTreeSet<u32> = BTreeSet::new();
    for u in 0..n_users {
        let list = engine.recommend(UserId(u)).unwrap();
        union.extend(list.iter().map(|i| i.0));
    }
    let (bands, aggregate) = engine.window_stats().expect("obs attached");
    assert_eq!(bands.len(), 3);
    assert_eq!(
        bands.iter().map(|b| b.lists).sum::<u64>(),
        n_users as u64,
        "every served list lands in exactly one band's window"
    );
    assert_eq!(aggregate.lists, n_users as u64);
    assert_eq!(
        aggregate.coverage,
        union.len() as f64 / n_items as f64,
        "aggregate coverage is the union, not a mean of band coverages"
    );
    for band in &bands {
        assert!(band.coverage <= aggregate.coverage + 1e-12);
    }
}

// ------------------------------------------------------------------ http

/// `/v1/metrics` answers valid Prometheus text exposition carrying the
/// engine, window, and HTTP stage families with per-band/per-stage labels.
#[test]
fn http_metrics_endpoint_serves_valid_prometheus() {
    let bundle = fixture_bundle(55);
    let n_users = bundle.n_users();
    let engine = Arc::new(ServingEngine::new(bundle, EngineConfig::default()));
    let server = HttpServer::bind(
        Frontend::Single(engine),
        None,
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    let mut client = HttpClient::new(server.local_addr().to_string());

    for u in 0..n_users.min(8) {
        let resp = client
            .request("GET", &format!("/v1/recommend/{u}"), None)
            .unwrap();
        assert_eq!(resp.status, 200);
    }
    let resp = client.request("GET", "/v1/metrics", None).unwrap();
    assert_eq!(resp.status, 200);
    let text = String::from_utf8(resp.body).unwrap();
    let samples = parse_prometheus(&text);

    let served = samples
        .iter()
        .find(|(n, l, _)| {
            n == "ganc_engine_requests_total"
                && l.contains("band=\"all\"")
                && l.contains("result=\"miss\"")
        })
        .expect("engine request counter present")
        .2;
    assert_eq!(served, n_users.min(8) as f64);
    for family in [
        "ganc_engine_request_us_bucket",
        "ganc_http_stage_us_bucket",
        "ganc_http_requests_total",
        "ganc_window_coverage",
        "ganc_window_novelty_bits",
        "ganc_window_long_tail_share",
        "ganc_engine_generation",
    ] {
        assert!(
            samples.iter().any(|(n, _, _)| n == family),
            "family {family} missing from exposition"
        );
    }
    for stage in ["parse", "dispatch", "write"] {
        let label = format!("stage=\"{stage}\"");
        assert!(
            samples
                .iter()
                .any(|(n, l, _)| n == "ganc_http_stage_us_count" && l.contains(&label)),
            "stage {stage} missing"
        );
    }
}

/// `/v1/trace` drains the ring exactly once and records the full request +
/// refit lifecycle: http/request events for traffic, ingest events, and
/// `refit_started` → `refit_swapped` with generations for `/admin/refit`.
#[test]
fn http_trace_records_request_and_refit_lifecycle() {
    let bundle = fixture_bundle(77);
    let engine = Arc::new(ShardedEngine::new(bundle, ShardConfig::quantile(2)));
    let hook = RefitHook {
        fitter: fitter(),
        cfg: fit_cfg(),
        cadence: None,
    };
    let server = HttpServer::bind(
        Frontend::Sharded(Arc::clone(&engine)),
        Some(hook),
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    let mut client = HttpClient::new(server.local_addr().to_string());

    assert_eq!(
        client
            .request("GET", "/v1/recommend/0", None)
            .unwrap()
            .status,
        200
    );
    assert_eq!(
        client
            .request(
                "POST",
                "/v1/ingest",
                Some("{\"user\":1,\"item\":2,\"rating\":4.0}")
            )
            .unwrap()
            .status,
        200
    );
    assert_eq!(
        client.request("POST", "/admin/refit", None).unwrap().status,
        200
    );

    let trace = get_json(&mut client, "/v1/trace");
    assert_eq!(trace["dropped"].as_u64(), Some(0));
    let events = trace["events"].as_array().unwrap();
    let kinds: Vec<&str> = events.iter().map(|e| e["kind"].as_str().unwrap()).collect();
    for expected in [
        "http",
        "request",
        "ingest",
        "refit_started",
        "refit_swapped",
    ] {
        assert!(
            kinds.contains(&expected),
            "missing kind {expected}: {kinds:?}"
        );
    }
    let swapped = events
        .iter()
        .find(|e| e["kind"].as_str() == Some("refit_swapped"))
        .unwrap();
    assert_eq!(swapped["data"]["generation"].as_u64(), Some(1));
    let seqs: Vec<u64> = events.iter().map(|e| e["seq"].as_u64().unwrap()).collect();
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "seq strictly increases"
    );

    // Drained means drained: a second poll only holds what happened since
    // (the first poll's own http event), none of the refit lifecycle.
    let again = get_json(&mut client, "/v1/trace");
    let kinds: Vec<String> = again["events"]
        .as_array()
        .unwrap()
        .iter()
        .map(|e| e["kind"].as_str().unwrap().to_string())
        .collect();
    assert!(
        kinds.iter().all(|k| k == "http"),
        "second drain must not replay engine events: {kinds:?}"
    );
}

/// With `RefitHook::cadence` set, bind spawns the background adaptive
/// controller and `/v1/healthz` surfaces its liveness, refit count, and
/// the pending ingest volume feeding its trigger.
#[test]
fn healthz_reports_adaptive_controller_and_pending_ingests() {
    let bundle = fixture_bundle(91);
    let engine = Arc::new(ShardedEngine::new(bundle, ShardConfig::quantile(2)));
    let hook = RefitHook {
        fitter: fitter(),
        cfg: fit_cfg(),
        // A volume threshold no test traffic reaches: the controller must
        // stay alive and *not* refit, so the counters are deterministic.
        cadence: Some(CadenceConfig {
            volume_threshold: usize::MAX,
            min_interval: Duration::from_millis(1),
            max_interval: Duration::from_secs(3600),
        }),
    };
    let server = HttpServer::bind(
        Frontend::Sharded(Arc::clone(&engine)),
        Some(hook.clone()),
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    let mut client = HttpClient::new(server.local_addr().to_string());

    for k in 0..3u32 {
        let body = format!("{{\"user\":{k},\"item\":1,\"rating\":3.0}}");
        assert_eq!(
            client
                .request("POST", "/v1/ingest", Some(&body))
                .unwrap()
                .status,
            200
        );
    }
    let health = get_json(&mut client, "/v1/healthz");
    assert_eq!(health["ok"].as_bool(), Some(true));
    assert_eq!(health["generation"].as_u64(), Some(0));
    assert_eq!(health["pending_ingests"].as_u64(), Some(3));
    assert_eq!(health["refit"]["alive"].as_bool(), Some(true));
    assert_eq!(health["refit"]["refits"].as_u64(), Some(0));

    // A cadence on a non-sharded front is a configuration error at bind.
    let single = Arc::new(ServingEngine::new(
        fixture_bundle(91),
        EngineConfig::default(),
    ));
    let err = match HttpServer::bind(
        Frontend::Single(single),
        Some(hook),
        ServerConfig::default(),
        "127.0.0.1:0",
    ) {
        Err(e) => e,
        Ok(_) => panic!("cadence on a single-engine front must be rejected"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
}

/// The `Frontend::Router` `/v1/stats` fix: every route reports its band
/// index, kind (local / coalesced), peer address, own generation, and the
/// coalescer's queue depth where one exists.
#[test]
fn router_stats_reports_per_band_kind_generation_and_pending() {
    let bundle = fixture_bundle(13);
    let cuts = cut_theta_bands(&bundle.theta, 2);
    let (lo0, hi0) = band_bounds(&cuts, 0);
    let (lo1, hi1) = band_bounds(&cuts, 1);
    let local = Arc::new(ServingEngine::new(
        bundle.slice_theta_band(lo0, hi0),
        EngineConfig::default(),
    ));
    let remote_engine = Arc::new(ServingEngine::new(
        bundle.slice_theta_band(lo1, hi1),
        EngineConfig::default(),
    ));
    let peer: Arc<dyn PeerTransport> = Arc::new(Frontend::Single(remote_engine));
    let coalesced = CoalescedShard::new(peer, BatchConfig::default());
    let router = Arc::new(RouterNode::new(
        Arc::clone(&bundle.theta),
        cuts,
        vec![
            ShardRoute::Local(local),
            ShardRoute::Remote(Arc::new(coalesced)),
        ],
    ));
    let server = HttpServer::bind(
        Frontend::Router(router),
        None,
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    let mut client = HttpClient::new(server.local_addr().to_string());

    let stats = get_json(&mut client, "/v1/stats");
    assert_eq!(stats["backend"].as_str(), Some("router"));
    let shards = stats["shards"].as_array().unwrap();
    assert_eq!(shards.len(), 2);

    assert_eq!(shards[0]["band"].as_u64(), Some(0));
    assert_eq!(shards[0]["kind"].as_str(), Some("local"));
    assert!(shards[0]["addr"].is_null());
    assert_eq!(shards[0]["generation"].as_u64(), Some(0));
    assert!(shards[0]["pending"].is_null(), "local routes hold no queue");

    assert_eq!(shards[1]["band"].as_u64(), Some(1));
    assert_eq!(shards[1]["kind"].as_str(), Some("coalesced"));
    assert_eq!(shards[1]["addr"].as_str(), Some("in-process:single"));
    assert_eq!(shards[1]["generation"].as_u64(), Some(0));
    assert_eq!(shards[1]["pending"].as_u64(), Some(0));
}

/// The remote-band window fix: a router's `/v1/stats` used to report
/// windows only for local slices — remote bands (the common deployment)
/// silently vanished from the fold. Now the window rides the wire
/// (`GET /v1/window` against each shard node) and the router's aggregate
/// is the exact union across the deployment.
#[test]
fn router_stats_folds_remote_band_windows_over_the_wire() {
    let bundle = fixture_bundle(13);
    let cuts = cut_theta_bands(&bundle.theta, 2);
    let (lo0, hi0) = band_bounds(&cuts, 0);
    let (lo1, hi1) = band_bounds(&cuts, 1);
    let local = Arc::new(ServingEngine::new(
        bundle.slice_theta_band(lo0, hi0),
        EngineConfig::default(),
    ));
    // Band 1 runs behind a real shard server on its own hub: its window
    // can only reach the router over HTTP, not through shared memory.
    let shard_server = HttpServer::bind(
        Frontend::Single(Arc::new(ServingEngine::new(
            bundle.slice_theta_band(lo1, hi1),
            EngineConfig::default(),
        ))),
        None,
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    let remote = RemoteShard::connect(shard_server.local_addr().to_string()).unwrap();
    let router = Arc::new(RouterNode::new(
        Arc::clone(&bundle.theta),
        cuts.clone(),
        vec![ShardRoute::Local(local), ShardRoute::remote(remote)],
    ));
    let server = HttpServer::bind(
        Frontend::Router(router),
        None,
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    let mut client = HttpClient::new(server.local_addr().to_string());

    // One recommendation through each band, so both slices have live
    // window entries.
    let user_in = |band: usize| {
        (0..bundle.n_users())
            .map(UserId)
            .find(|u| shard_of(&cuts, bundle.theta[u.idx()]) == band)
            .unwrap()
    };
    for band in 0..2 {
        let path = format!("/v1/recommend/{}", user_in(band).0);
        assert_eq!(client.request("GET", &path, None).unwrap().status, 200);
    }

    let stats = get_json(&mut client, "/v1/stats");
    let window = &stats["window"];
    assert!(
        !window.is_null(),
        "router stats must fold band windows: {stats:?}"
    );
    let bands = window["bands"].as_array().unwrap();
    assert_eq!(bands.len(), 2);
    assert!(!bands[0].is_null(), "local band window present");
    assert!(
        !bands[1].is_null(),
        "remote band window must come over the wire"
    );
    assert_eq!(bands[1]["lists"].as_u64(), Some(1));
    // The aggregate is the exact union: one list per band served above.
    assert_eq!(window["aggregate"]["lists"].as_u64(), Some(2));
    assert_eq!(window["aggregate"]["items"].as_u64(), Some(2 * N as u64));

    // The shard node's own `/v1/window` is the wire surface the router
    // consumed — non-null for engine fronts, null for router fronts
    // (a router's union must not be re-exported and double-counted).
    let mut shard_client = HttpClient::new(shard_server.local_addr().to_string());
    let wire = get_json(&mut shard_client, "/v1/window");
    assert_eq!(wire["window"]["lists"].as_u64(), Some(1));
    let router_wire = get_json(&mut client, "/v1/window");
    assert!(router_wire["window"].is_null());
}

/// The PR 7 availability counters are not decorative: a parked primary
/// moves `ganc_router_band_hedges_total` off its pre-registered 0, a flaky
/// primary moves the failover counter, both leave typed trace events
/// (`band_hedge` / `band_failover`) with replica indices, and `/v1/stats`
/// mirrors the same numbers per band.
#[test]
fn router_replica_counters_and_trace_events_move_under_faults() {
    let bundle = fixture_bundle(13);
    let cuts = cut_theta_bands(&bundle.theta, 2);
    // Frozen clock: the server-spawned probe loops stay provably idle, so
    // every counter below is exactly what the two requests caused.
    let clock = Arc::new(ManualClock::new());
    let mut routes = Vec::new();
    let mut gates: Vec<Vec<Arc<GatedPeer>>> = Vec::new();
    let mut flaky: Vec<Vec<Arc<FlakyPeer>>> = Vec::new();
    for j in 0..2 {
        let (lo, hi) = band_bounds(&cuts, j);
        let slice = bundle.slice_theta_band(lo, hi);
        let mut peers: Vec<Arc<dyn PeerTransport>> = Vec::new();
        let mut band_gates = Vec::new();
        let mut band_flaky = Vec::new();
        for _ in 0..2 {
            let engine = Arc::new(ServingEngine::new(slice.clone(), EngineConfig::default()));
            let frontend: Arc<dyn PeerTransport> = Arc::new(Frontend::Single(engine));
            let flaky_r = FlakyPeer::new(frontend);
            let gate = GatedPeer::new(Arc::clone(&flaky_r) as Arc<dyn PeerTransport>);
            gate.open();
            peers.push(Arc::clone(&gate) as Arc<dyn PeerTransport>);
            band_gates.push(gate);
            band_flaky.push(flaky_r);
        }
        // Band 0 hedges immediately; band 1 is failover-only.
        let cfg = ReplicaConfig {
            hedge_budget: if j == 0 { Some(Duration::ZERO) } else { None },
            ..ReplicaConfig::default()
        };
        routes.push(ShardRoute::Replicas(ReplicaSet::with_clock(
            peers,
            cfg,
            Arc::clone(&clock) as Arc<dyn Clock>,
        )));
        gates.push(band_gates);
        flaky.push(band_flaky);
    }
    let router = Arc::new(RouterNode::new(
        Arc::clone(&bundle.theta),
        cuts.clone(),
        routes,
    ));
    let server = HttpServer::bind(
        Frontend::Router(router),
        None,
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    let mut client = HttpClient::new(server.local_addr().to_string());

    let user_in = |band: usize| {
        (0..bundle.n_users())
            .map(UserId)
            .find(|u| shard_of(&cuts, bundle.theta[u.idx()]) == band)
            .expect("fixture straddles both bands")
    };

    // Slow primary on band 0: the zero budget re-issues to replica 1,
    // whose answer unblocks the request while replica 0 stays parked.
    gates[0][0].close();
    let resp = client
        .request("GET", &format!("/v1/recommend/{}", user_in(0).0), None)
        .unwrap();
    assert_eq!(resp.status, 200);
    // Dead primary on band 1: one injected failure, failover answers.
    flaky[1][0].fail_next(1);
    let resp = client
        .request("GET", &format!("/v1/recommend/{}", user_in(1).0), None)
        .unwrap();
    assert_eq!(resp.status, 200);

    let resp = client.request("GET", "/v1/metrics", None).unwrap();
    let samples = parse_prometheus(std::str::from_utf8(&resp.body).unwrap());
    let series = |name: &str, band: &str| {
        let label = format!("band=\"{band}\"");
        samples
            .iter()
            .find(|(n, l, _)| n == name && l.contains(&label) && l.contains("kind=\"replicas\""))
            .unwrap_or_else(|| panic!("{name} band {band} missing"))
            .2
    };
    assert_eq!(series("ganc_router_band_hedges_total", "0"), 1.0);
    assert_eq!(series("ganc_router_band_hedges_total", "1"), 0.0);
    assert_eq!(series("ganc_router_band_failovers_total", "0"), 0.0);
    assert_eq!(series("ganc_router_band_failovers_total", "1"), 1.0);
    assert_eq!(series("ganc_router_band_ejections_total", "0"), 0.0);
    assert_eq!(series("ganc_router_band_restores_total", "1"), 0.0);

    let trace = get_json(&mut client, "/v1/trace");
    let events = trace["events"].as_array().unwrap();
    let hedge = events
        .iter()
        .find(|e| e["kind"].as_str() == Some("band_hedge"))
        .expect("band_hedge event recorded");
    assert_eq!(hedge["data"]["band"].as_u64(), Some(0));
    assert_eq!(hedge["data"]["primary"].as_u64(), Some(0));
    assert_eq!(hedge["data"]["hedge"].as_u64(), Some(1));
    let failover = events
        .iter()
        .find(|e| e["kind"].as_str() == Some("band_failover"))
        .expect("band_failover event recorded");
    assert_eq!(failover["data"]["band"].as_u64(), Some(1));
    assert_eq!(failover["data"]["from"].as_u64(), Some(0));
    assert_eq!(failover["data"]["to"].as_u64(), Some(1));

    let stats = get_json(&mut client, "/v1/stats");
    let shards = stats["shards"].as_array().unwrap();
    assert_eq!(shards[0]["kind"].as_str(), Some("replicas"));
    assert_eq!(shards[0]["replicas"]["count"].as_u64(), Some(2));
    assert_eq!(shards[0]["replicas"]["healthy"].as_u64(), Some(2));
    assert_eq!(shards[0]["replicas"]["hedges"].as_u64(), Some(1));
    assert_eq!(shards[1]["replicas"]["failovers"].as_u64(), Some(1));

    gates[0][0].open();
}

/// The PR 8 durability surface is observable end to end: a startup replay
/// that ran *before* obs attach is backfilled into the `ganc_wal_*`
/// counters and leaves a typed `wal_replay` trace event; live keyed
/// ingests move the append and dedup-hit counters; a refit's compaction
/// moves the truncation counter and leaves a `wal_truncate` event; and
/// `/v1/healthz` exposes the durable log's current size.
#[test]
fn wal_counters_trace_events_and_healthz_surface() {
    let path = std::env::temp_dir().join(format!("ganc_obs_wal_{}.bin", std::process::id()));
    let artifact = std::env::temp_dir().join(format!("ganc_obs_wal_{}.ganc", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&artifact);

    // A previous life of the node acknowledges two keyed ingests into its
    // WAL, then "crashes" (dropped without refit).
    {
        let engine = ShardedEngine::new(fixture_bundle(47), ShardConfig::quantile(2));
        engine.attach_durable(DurableConfig::new(&path)).unwrap();
        engine
            .ingest_keyed(Some("obs-0"), UserId(0), ItemId(1), 4.0)
            .unwrap();
        engine
            .ingest_keyed(Some("obs-1"), UserId(1), ItemId(2), 3.0)
            .unwrap();
    }

    // Restart: the replay happens at attach_durable, before bind attaches
    // the hub — the counters must be backfilled, not lost.
    let engine = Arc::new(ShardedEngine::new(
        fixture_bundle(47),
        ShardConfig::quantile(2),
    ));
    // Refit compaction only truncates once the refitted bundle is
    // persisted somewhere; give the restarted node an artifact path so
    // the truncation counter asserted below can move.
    let mut durable_cfg = DurableConfig::new(&path);
    durable_cfg.artifact_path = Some(artifact.clone());
    let replay = engine.attach_durable(durable_cfg).unwrap();
    assert_eq!(replay.records, 2);
    let hook = RefitHook {
        fitter: fitter(),
        cfg: fit_cfg(),
        cadence: None,
    };
    let server = HttpServer::bind(
        Frontend::Sharded(Arc::clone(&engine)),
        Some(hook),
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    let mut client = HttpClient::new(server.local_addr().to_string());

    // One new keyed ingest plus a resend under the same key.
    let body = "{\"user\":2,\"item\":3,\"rating\":5.0}";
    let resp = client
        .request_keyed("POST", "/v1/ingest", Some(body), "obs-2")
        .unwrap();
    assert_eq!(resp.status, 200);
    let resp = client
        .request_keyed("POST", "/v1/ingest", Some(body), "obs-2")
        .unwrap();
    let v: Value = tinyjson::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    assert_eq!(v["deduplicated"].as_bool(), Some(true));

    let health = get_json(&mut client, "/v1/healthz");
    assert_eq!(health["wal"]["records"].as_u64(), Some(3));
    assert!(health["wal"]["bytes"].as_u64().unwrap() > 0);

    // Refit drains the three pending ingests and compacts the WAL.
    assert_eq!(
        client.request("POST", "/admin/refit", None).unwrap().status,
        200
    );

    let resp = client.request("GET", "/v1/metrics", None).unwrap();
    let samples = parse_prometheus(std::str::from_utf8(&resp.body).unwrap());
    let counter = |name: &str| {
        samples
            .iter()
            .find(|(n, _, _)| n == name)
            .unwrap_or_else(|| panic!("{name} missing from exposition"))
            .2
    };
    assert_eq!(
        counter("ganc_wal_replayed_total"),
        2.0,
        "pre-attach replay backfilled"
    );
    assert_eq!(
        counter("ganc_wal_appends_total"),
        1.0,
        "the one post-restart ingest"
    );
    assert_eq!(counter("ganc_wal_dedup_hits_total"), 1.0);
    assert_eq!(counter("ganc_wal_truncations_total"), 1.0);

    let trace = get_json(&mut client, "/v1/trace");
    let events = trace["events"].as_array().unwrap();
    let replay_ev = events
        .iter()
        .find(|e| e["kind"].as_str() == Some("wal_replay"))
        .expect("wal_replay event recorded at attach");
    assert_eq!(replay_ev["data"]["records"].as_u64(), Some(2));
    assert_eq!(replay_ev["data"]["corrupted"].as_bool(), Some(false));
    let trunc = events
        .iter()
        .find(|e| e["kind"].as_str() == Some("wal_truncate"))
        .expect("wal_truncate event recorded at refit");
    assert_eq!(trunc["data"]["generation"].as_u64(), Some(1));
    assert_eq!(
        trunc["data"]["retained"].as_u64(),
        Some(3),
        "all three keys survive as dedup stubs"
    );

    // After compaction the log holds exactly the three key stubs.
    let health = get_json(&mut client, "/v1/healthz");
    assert_eq!(health["wal"]["records"].as_u64(), Some(3));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&artifact);
}

/// `/v1/stats` windows agree with the engine's own view, and a `GET
/// /v1/metrics` scrape returns the same rolling gauges the stats endpoint
/// just published — one source of truth, two expositions.
#[test]
fn stats_windows_and_metrics_gauges_agree() {
    let bundle = fixture_bundle(101);
    let n_users = bundle.n_users();
    let engine = Arc::new(ServingEngine::new(bundle, EngineConfig::default()));
    let server = HttpServer::bind(
        Frontend::Single(Arc::clone(&engine)),
        None,
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    let mut client = HttpClient::new(server.local_addr().to_string());

    for u in 0..n_users {
        client
            .request("GET", &format!("/v1/recommend/{u}"), None)
            .unwrap();
    }
    let stats = get_json(&mut client, "/v1/stats");
    let window = &stats["window"]["aggregate"];
    assert_eq!(window["lists"].as_u64(), Some(n_users as u64));
    let coverage = window["coverage"].as_f64().unwrap();
    assert!(coverage > 0.0);

    let resp = client.request("GET", "/v1/metrics", None).unwrap();
    let samples = parse_prometheus(std::str::from_utf8(&resp.body).unwrap());
    let gauge = samples
        .iter()
        .find(|(n, l, _)| n == "ganc_window_coverage" && l.contains("band=\"all\""))
        .unwrap()
        .2;
    assert_eq!(gauge, coverage, "stats and metrics publish the same window");
}
