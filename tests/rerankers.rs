//! Integration tests of the baseline re-rankers against a trained RSVD on
//! realistic synthetic data — checking both the top-N contract and each
//! method's behavioural signature from Table IV.

use ganc::dataset::stats::LongTail;
use ganc::dataset::synth::DatasetProfile;
use ganc::metrics::{evaluate_topn, EvalContext, TopN, TopNMetrics};
use ganc::recommender::rsvd::{Rsvd, RsvdConfig};
use ganc::recommender::topn::generate_topn_lists;
use ganc::rerank::five_d::FiveD;
use ganc::rerank::pra::Pra;
use ganc::rerank::rbt::{Rbt, RbtCriterion};
use ganc::rerank::{rerank_all, Reranker};

const N: usize = 5;

struct Fixture {
    split: ganc::dataset::TrainTest,
    ctx: EvalContext,
    rsvd: Rsvd,
}

fn fixture() -> Fixture {
    let data = DatasetProfile::small().generate(301);
    let split = data.split_per_user(0.5, 4).unwrap();
    let ctx = EvalContext::new(&split.train, &split.test);
    let rsvd = Rsvd::train(
        &split.train,
        RsvdConfig {
            factors: 12,
            epochs: 12,
            learning_rate: 0.02,
            ..RsvdConfig::default()
        },
    );
    Fixture { split, ctx, rsvd }
}

fn eval(fx: &Fixture, rr: &dyn Reranker) -> TopNMetrics {
    let lists = rerank_all(rr, &fx.rsvd, &fx.split.train, N, 3);
    let topn = TopN::new(N, lists);
    assert_eq!(
        topn.contract_violation(&fx.split.train),
        None,
        "{} violates the top-N contract",
        rr.name()
    );
    evaluate_topn(&topn, &fx.ctx)
}

#[test]
fn all_rerankers_produce_full_valid_lists() {
    let fx = fixture();
    let train = &fx.split.train;
    let rerankers: Vec<Box<dyn Reranker>> = vec![
        Box::new(Rbt::new(train, RbtCriterion::Popularity, "RSVD")),
        Box::new(Rbt::new(train, RbtCriterion::AverageRating, "RSVD")),
        Box::new(FiveD::new(train, "RSVD")),
        Box::new(FiveD::with_options(train, "RSVD", true, true)),
        Box::new(Pra::new(train, "RSVD", 10)),
        Box::new(Pra::new(train, "RSVD", 20)),
    ];
    for rr in &rerankers {
        let lists = rerank_all(rr.as_ref(), &fx.rsvd, train, N, 2);
        assert!(
            lists.iter().all(|l| l.len() == N),
            "{}: every user has a full candidate pool here",
            rr.name()
        );
    }
}

#[test]
fn five_d_is_the_extreme_long_tail_promoter() {
    // The paper's Table IV signature: 5D(RSVD) tops LTAccuracy and pays for
    // it in F-measure.
    let fx = fixture();
    let train = &fx.split.train;
    let raw = evaluate_topn(
        &TopN::new(N, generate_topn_lists(&fx.rsvd, train, N, 2)),
        &fx.ctx,
    );
    let fived = eval(&fx, &FiveD::new(train, "RSVD"));
    assert!(
        fived.lt_accuracy > 0.9,
        "5D LTAccuracy {} should be near 1",
        fived.lt_accuracy
    );
    assert!(
        fived.lt_accuracy > raw.lt_accuracy,
        "5D must beat raw RSVD on novelty"
    );
}

#[test]
fn five_d_accuracy_filter_recovers_accuracy() {
    let fx = fixture();
    let train = &fx.split.train;
    let plain = eval(&fx, &FiveD::new(train, "RSVD"));
    let filtered = eval(&fx, &FiveD::with_options(train, "RSVD", true, true));
    assert!(
        filtered.f_measure >= plain.f_measure,
        "A+RR variant should not be less accurate: {} vs {}",
        filtered.f_measure,
        plain.f_measure
    );
}

#[test]
fn rbt_pop_criterion_lowers_recommended_popularity() {
    let fx = fixture();
    let train = &fx.split.train;
    let pop = train.item_popularity();
    let mean_pop = |topn: &TopN| -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for list in topn.lists() {
            for item in list {
                sum += pop[item.idx()] as f64;
                count += 1;
            }
        }
        sum / count.max(1) as f64
    };
    let raw = TopN::new(N, generate_topn_lists(&fx.rsvd, train, N, 2));
    let rbt = Rbt::with_params(train, RbtCriterion::Popularity, "RSVD", 3.8, 1);
    let reranked = TopN::new(N, rerank_all(&rbt, &fx.rsvd, train, N, 2));
    assert!(
        mean_pop(&reranked) < mean_pop(&raw),
        "RBT(Pop) should reduce average popularity: {} vs {}",
        mean_pop(&reranked),
        mean_pop(&raw)
    );
}

#[test]
fn pra_respects_user_tendencies() {
    let fx = fixture();
    let train = &fx.split.train;
    let pra = Pra::new(train, "RSVD", 10);
    let m = eval(&fx, &pra);
    let raw = evaluate_topn(
        &TopN::new(N, generate_topn_lists(&fx.rsvd, train, N, 2)),
        &fx.ctx,
    );
    // PRA is accuracy-preserving by design: its F stays within a modest
    // band of the base model (paper: PRA keeps the highest F among the
    // re-rankers).
    assert!(
        m.f_measure > 0.5 * raw.f_measure,
        "PRA F {} collapsed vs raw {}",
        m.f_measure,
        raw.f_measure
    );
}

#[test]
fn larger_exchangeable_set_does_not_reduce_coverage() {
    let fx = fixture();
    let train = &fx.split.train;
    let m10 = eval(&fx, &Pra::new(train, "RSVD", 10));
    let m20 = eval(&fx, &Pra::new(train, "RSVD", 20));
    assert!(
        m20.coverage >= 0.9 * m10.coverage,
        "|Xu|=20 coverage {} should not fall far below |Xu|=10 {}",
        m20.coverage,
        m10.coverage
    );
}

#[test]
fn long_tail_set_used_by_rerankers_matches_metrics() {
    // Internal consistency: FiveD promotes items the metric suite counts as
    // long-tail.
    let fx = fixture();
    let train = &fx.split.train;
    let lt = LongTail::pareto(train);
    let fived = FiveD::new(train, "RSVD");
    let lists = rerank_all(&fived, &fx.rsvd, train, N, 2);
    let tail_frac: f64 = {
        let total: usize = lists.iter().map(|l| l.len()).sum();
        let tail: usize = lists
            .iter()
            .flat_map(|l| l.iter())
            .filter(|i| lt.contains(**i))
            .count();
        tail as f64 / total.max(1) as f64
    };
    assert!(tail_frac > 0.9, "5D tail fraction {tail_frac}");
}
