//! End-to-end pipeline tests spanning every crate: data generation → split
//! → preference estimation → base recommenders → GANC → metrics.

use ganc::core::{AccuracyMode, CoverageKind, GancBuilder};
use ganc::dataset::synth::DatasetProfile;
use ganc::dataset::UserId;
use ganc::metrics::{evaluate_topn, EvalContext, TopN};
use ganc::preference::GeneralizedConfig;
use ganc::recommender::pop::MostPopular;
use ganc::recommender::psvd::Psvd;
use ganc::recommender::rsvd::{Rsvd, RsvdConfig};
use ganc::recommender::topn::generate_topn_lists;
use ganc::recommender::Recommender;

fn pipeline() -> (ganc::dataset::TrainTest, EvalContext, Vec<f64>) {
    let data = DatasetProfile::small().generate(101);
    let split = data.split_per_user(0.5, 11).unwrap();
    let ctx = EvalContext::new(&split.train, &split.test);
    let theta = GeneralizedConfig::default().estimate(&split.train);
    (split, ctx, theta)
}

#[test]
fn ganc_improves_coverage_while_keeping_reasonable_accuracy() {
    let (split, ctx, theta) = pipeline();
    let n = 5;
    let pop = MostPopular::fit(&split.train);
    let raw = TopN::new(n, generate_topn_lists(&pop, &split.train, n, 2));
    let ganc = TopN::new(
        n,
        GancBuilder::new(n)
            .coverage(CoverageKind::Dynamic)
            .accuracy_mode(AccuracyMode::TopNIndicator)
            .sample_size(80)
            .build_topn(&pop, &theta, &split.train, 5)
            .into_lists(),
    );
    let m_raw = evaluate_topn(&raw, &ctx);
    let m_ganc = evaluate_topn(&ganc, &ctx);
    assert!(
        m_ganc.coverage > 2.0 * m_raw.coverage,
        "coverage {} should far exceed Pop's {}",
        m_ganc.coverage,
        m_raw.coverage
    );
    assert!(
        m_ganc.gini < m_raw.gini,
        "gini must drop: {} vs {}",
        m_ganc.gini,
        m_raw.gini
    );
    assert!(m_ganc.lt_accuracy > m_raw.lt_accuracy, "novelty must rise");
}

#[test]
fn every_base_recommender_passes_the_topn_contract() {
    let (split, _, _) = pipeline();
    let train = &split.train;
    let pop = MostPopular::fit(train);
    let rsvd = Rsvd::train(
        train,
        RsvdConfig {
            factors: 8,
            epochs: 5,
            ..RsvdConfig::default()
        },
    );
    let psvd = Psvd::train(train, 8, 3);
    let models: Vec<&dyn Recommender> = vec![&pop, &rsvd, &psvd];
    for rec in models {
        let topn = TopN::new(5, generate_topn_lists(rec, train, 5, 3));
        assert_eq!(topn.contract_violation(train), None, "model {}", rec.name());
    }
}

#[test]
fn theta_vectors_are_valid_for_all_models() {
    let (split, _, theta) = pipeline();
    assert_eq!(theta.len(), split.train.n_users() as usize);
    assert!(theta.iter().all(|&t| (0.0..=1.0).contains(&t)));
    // Estimation must not collapse to a constant on skewed data.
    let mean = theta.iter().sum::<f64>() / theta.len() as f64;
    let var = theta.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / theta.len() as f64;
    assert!(var > 1e-5, "θG variance collapsed: {var}");
}

#[test]
fn n_larger_than_catalog_is_handled() {
    let data = DatasetProfile::tiny().generate(5);
    let split = data.split_per_user(0.5, 1).unwrap();
    let pop = MostPopular::fit(&split.train);
    let n = split.train.n_items() as usize + 50;
    let lists = generate_topn_lists(&pop, &split.train, n, 2);
    for (u, list) in lists.iter().enumerate() {
        // list length = number of unseen train items for that user
        assert!(list.len() <= split.train.n_items() as usize);
        for item in list {
            assert!(!split.train.contains(UserId(u as u32), *item));
        }
    }
}

#[test]
fn metrics_are_bounded_for_all_coverage_kinds() {
    let (split, ctx, theta) = pipeline();
    let pop = MostPopular::fit(&split.train);
    for kind in [
        CoverageKind::Random,
        CoverageKind::Static,
        CoverageKind::Dynamic,
    ] {
        let topn = TopN::new(
            5,
            GancBuilder::new(5)
                .coverage(kind)
                .sample_size(50)
                .build_topn(&pop, &theta, &split.train, 9)
                .into_lists(),
        );
        let m = evaluate_topn(&topn, &ctx);
        for (name, v) in [
            ("precision", m.precision),
            ("recall", m.recall),
            ("f", m.f_measure),
            ("strat", m.strat_recall),
            ("ltacc", m.lt_accuracy),
            ("coverage", m.coverage),
            ("gini", m.gini),
            ("ndcg", m.ndcg),
        ] {
            assert!((0.0..=1.0).contains(&v), "{kind:?} {name} = {v}");
        }
    }
}

#[test]
fn mt_style_zero_to_ten_data_flows_through() {
    let mut profile = DatasetProfile::tiny();
    profile.scale = ganc::dataset::RatingScale::zero_to_ten();
    let data = profile.generate(7).mapped_to_one_five();
    let split = data.split_per_user(0.8, 3).unwrap();
    let ctx = EvalContext::new(&split.train, &split.test);
    let theta = GeneralizedConfig::default().estimate(&split.train);
    let pop = MostPopular::fit(&split.train);
    let topn = TopN::new(
        5,
        GancBuilder::new(5)
            .sample_size(20)
            .build_topn(&pop, &theta, &split.train, 2)
            .into_lists(),
    );
    let m = evaluate_topn(&topn, &ctx);
    assert!(m.coverage > 0.0);
}
