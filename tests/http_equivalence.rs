//! Socket-level equivalence: responses served over HTTP must be
//! *byte-identical* to what the in-process engines produce — across every
//! base model, Stat/Dyn coverage, sharded and unsharded fronts, generation
//! tags included. The expected bodies are built by hand from the traced
//! in-process output, so the wire format itself is pinned, not just the
//! parsed payload.
//!
//! The final test is the acceptance criterion for multi-node serving: node
//! B loads a `bundle.shard1.ganc` slice and serves its θ-band over HTTP;
//! node A routes to it through `RemoteShard` (its other band local); node
//! A's responses are byte-identical to a server fronting a single-process
//! `ShardedEngine`.

use ganc::core::coverage::CoverageKind;
use ganc::dataset::synth::DatasetProfile;
use ganc::dataset::{Interactions, ItemId, UserId};
use ganc::http::{
    Frontend, HttpClient, HttpServer, RemoteShard, RouterNode, ServerConfig, ShardRoute,
};
use ganc::preference::generalized::GeneralizedConfig;
use ganc::recommender::item_avg::ItemAvg;
use ganc::recommender::knn::{ItemKnn, ItemKnnConfig};
use ganc::recommender::pop::MostPopular;
use ganc::recommender::psvd::Psvd;
use ganc::recommender::rankmf::{RankMf, RankMfConfig};
use ganc::recommender::rsvd::{Rsvd, RsvdConfig};
use ganc::serve::{
    EngineConfig, FitConfig, FittedModel, ModelBundle, SaveLoad, ServingEngine, ShardConfig,
    ShardedEngine,
};
use std::sync::Arc;

const N: usize = 5;

fn fixture() -> (Interactions, Vec<f64>) {
    let data = DatasetProfile::tiny().generate(97);
    let split = data.split_per_user(0.5, 3).unwrap();
    let theta = GeneralizedConfig::default().estimate(&split.train);
    (split.train, theta)
}

fn fit_every_model(train: &Interactions) -> Vec<FittedModel> {
    let small_mf = RsvdConfig {
        factors: 8,
        epochs: 4,
        ..RsvdConfig::default()
    };
    let small_rank = RankMfConfig {
        factors: 8,
        epochs: 3,
        ..RankMfConfig::default()
    };
    vec![
        FittedModel::Pop(MostPopular::fit(train)),
        FittedModel::ItemAvg(ItemAvg::fit(train, 5.0)),
        FittedModel::ItemKnn(ItemKnn::fit(train, ItemKnnConfig::default())),
        FittedModel::Rsvd(Rsvd::train(train, small_mf)),
        FittedModel::Psvd(Psvd::train(train, 8, 3)),
        FittedModel::RankMf(RankMf::train(train, small_rank)),
    ]
}

fn bundle_for(model: FittedModel, kind: CoverageKind) -> ModelBundle {
    let (train, theta) = fixture();
    let cfg = FitConfig {
        coverage: kind,
        sample_size: 12,
        ..FitConfig::new(N)
    };
    ModelBundle::fit(model, theta, train, &cfg)
}

fn serve(frontend: Frontend) -> (HttpServer, HttpClient) {
    let server = HttpServer::bind(frontend, None, ServerConfig::default(), "127.0.0.1:0")
        .expect("ephemeral bind");
    let client = HttpClient::new(server.local_addr().to_string());
    (server, client)
}

/// The exact wire body `GET /v1/recommend/{user}` must produce for a traced
/// in-process response.
fn expected_recommend_body(user: u32, generation: u64, items: &[ItemId]) -> String {
    let items: Vec<String> = items.iter().map(|i| i.0.to_string()).collect();
    format!(
        "{{\"user\":{user},\"generation\":{generation},\"items\":[{}]}}",
        items.join(",")
    )
}

fn assert_all_users_match(
    client: &mut HttpClient,
    n_users: u32,
    label: &str,
    expect: impl Fn(UserId) -> (Arc<Vec<ItemId>>, u64),
) {
    for u in 0..n_users {
        let (list, generation) = expect(UserId(u));
        let resp = client
            .request("GET", &format!("/v1/recommend/{u}"), None)
            .expect("http round-trip");
        assert_eq!(resp.status, 200, "{label}: user {u}");
        assert_eq!(
            String::from_utf8(resp.body).unwrap(),
            expected_recommend_body(u, generation, &list),
            "{label}: user {u} body is not byte-identical"
        );
    }
}

/// All 6 base models × Stat/Dyn over an unsharded front: HTTP bytes ==
/// in-process `recommend_traced` output, generation tag included.
#[test]
fn http_matches_in_process_for_every_model_and_coverage() {
    let (train, _) = fixture();
    for kind in [CoverageKind::Static, CoverageKind::Dynamic] {
        for model in fit_every_model(&train) {
            let name = match &model {
                FittedModel::Pop(_) => "Pop",
                FittedModel::ItemAvg(_) => "ItemAvg",
                FittedModel::ItemKnn(_) => "ItemKnn",
                FittedModel::Rsvd(_) => "RSVD",
                FittedModel::Psvd(_) => "PSVD",
                FittedModel::RankMf(_) => "RankMF",
            };
            let engine = Arc::new(ServingEngine::new(
                bundle_for(model, kind),
                EngineConfig::default(),
            ));
            let (_server, mut client) = serve(Frontend::Single(Arc::clone(&engine)));
            assert_all_users_match(
                &mut client,
                engine.n_users(),
                &format!("{name}/{kind:?}"),
                |u| engine.recommend_traced(u).unwrap(),
            );
        }
    }
}

/// Same property through an in-process sharded front.
#[test]
fn http_matches_in_process_sharded() {
    let (train, _) = fixture();
    for kind in [CoverageKind::Static, CoverageKind::Dynamic] {
        for model in fit_every_model(&train) {
            let engine = Arc::new(ShardedEngine::new(
                bundle_for(model, kind),
                ShardConfig::quantile(3),
            ));
            let (_server, mut client) = serve(Frontend::Sharded(Arc::clone(&engine)));
            assert_all_users_match(
                &mut client,
                engine.n_users(),
                &format!("sharded/{kind:?}"),
                |u| engine.recommend_traced(u).unwrap(),
            );
        }
    }
}

/// The batch endpoint routes through `recommend_batch_traced`: one
/// generation for the whole batch, slots in request order, unknown users
/// reported in-slot.
#[test]
fn http_batch_matches_in_process_and_reports_one_generation() {
    let engine = Arc::new(ShardedEngine::new(
        bundle_for(
            FittedModel::Pop(MostPopular::fit(&fixture().0)),
            CoverageKind::Dynamic,
        ),
        ShardConfig::quantile(2),
    ));
    let n_users = engine.n_users();
    let (_server, mut client) = serve(Frontend::Sharded(Arc::clone(&engine)));

    let bad = n_users + 7;
    let ids: Vec<String> = (0..n_users).chain([bad]).map(|u| u.to_string()).collect();
    let body = format!("{{\"users\":[{}]}}", ids.join(","));
    let resp = client
        .request("POST", "/v1/recommend:batch", Some(&body))
        .unwrap();
    assert_eq!(resp.status, 200);

    let users: Vec<UserId> = (0..n_users).chain([bad]).map(UserId).collect();
    let (answers, generation) = engine.recommend_batch_traced(&users);
    let slots: Vec<String> = users
        .iter()
        .zip(&answers)
        .map(|(u, answer)| match answer {
            Ok(list) => {
                let items: Vec<String> = list.iter().map(|i| i.0.to_string()).collect();
                format!("{{\"user\":{},\"items\":[{}]}}", u.0, items.join(","))
            }
            Err(_) => format!(
                "{{\"error\":\"unknown user {0}\",\"unknown_user\":{0}}}",
                u.0
            ),
        })
        .collect();
    let expected = format!(
        "{{\"generation\":{generation},\"results\":[{}]}}",
        slots.join(",")
    );
    assert_eq!(String::from_utf8(resp.body).unwrap(), expected);
}

/// Generation tags over HTTP follow a hot swap: the server shares the
/// engine, so a swap is visible on the very next request, and the body is
/// byte-identical to the new generation's in-process output.
#[test]
fn generation_tags_follow_hot_swap_over_http() {
    let (train, theta) = fixture();
    let cfg = FitConfig {
        coverage: CoverageKind::Static,
        sample_size: 12,
        ..FitConfig::new(N)
    };
    let a = ModelBundle::fit(
        FittedModel::Pop(MostPopular::fit(&train)),
        theta.clone(),
        train.clone(),
        &cfg,
    );
    let b = ModelBundle::fit(
        FittedModel::Pop(MostPopular::fit(&train)),
        vec![1.0; theta.len()],
        train.clone(),
        &cfg,
    );
    let engine = Arc::new(ServingEngine::new(a, EngineConfig::default()));
    let (_server, mut client) = serve(Frontend::Single(Arc::clone(&engine)));

    let before = client.request("GET", "/v1/recommend/0", None).unwrap();
    let (list0, g0) = engine.recommend_traced(UserId(0)).unwrap();
    assert_eq!(
        String::from_utf8(before.body).unwrap(),
        expected_recommend_body(0, g0, &list0)
    );
    assert_eq!(g0, 0);

    assert_eq!(engine.swap_bundle(b), 1);
    let after = client.request("GET", "/v1/recommend/0", None).unwrap();
    let (list1, g1) = engine.recommend_traced(UserId(0)).unwrap();
    assert_eq!(g1, 1, "swap must bump the served generation");
    assert_eq!(
        String::from_utf8(after.body).unwrap(),
        expected_recommend_body(0, g1, &list1)
    );
    assert_ne!(list0, list1, "θ flip must change the served list");

    let health = client.request("GET", "/v1/healthz", None).unwrap();
    assert_eq!(
        String::from_utf8(health.body).unwrap(),
        "{\"ok\":true,\"generation\":1}"
    );
}

/// `?n=` serves a prefix of the bundle's top-N without recomputing.
#[test]
fn recommend_n_param_truncates_to_prefix() {
    let engine = Arc::new(ServingEngine::new(
        bundle_for(
            FittedModel::Pop(MostPopular::fit(&fixture().0)),
            CoverageKind::Dynamic,
        ),
        EngineConfig::default(),
    ));
    let (_server, mut client) = serve(Frontend::Single(Arc::clone(&engine)));
    let (full, generation) = engine.recommend_traced(UserId(2)).unwrap();
    for n in [0usize, 1, 3, N, N + 9] {
        let resp = client
            .request("GET", &format!("/v1/recommend/2?n={n}"), None)
            .unwrap();
        assert_eq!(resp.status, 200);
        let shown = n.min(full.len());
        assert_eq!(
            String::from_utf8(resp.body).unwrap(),
            expected_recommend_body(2, generation, &full[..shown]),
            "n={n}"
        );
    }
}

/// Stats expose generation, cache hit rate, and the shard map.
#[test]
fn stats_report_cache_and_shard_map() {
    let engine = Arc::new(ShardedEngine::new(
        bundle_for(
            FittedModel::Pop(MostPopular::fit(&fixture().0)),
            CoverageKind::Dynamic,
        ),
        ShardConfig::quantile(3),
    ));
    let (_server, mut client) = serve(Frontend::Sharded(Arc::clone(&engine)));
    client.request("GET", "/v1/recommend/1", None).unwrap();
    client.request("GET", "/v1/recommend/1", None).unwrap();
    let resp = client.request("GET", "/v1/stats", None).unwrap();
    assert_eq!(resp.status, 200);
    let v = tinyjson::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    assert_eq!(v["backend"].as_str(), Some("sharded"));
    assert_eq!(v["generation"].as_u64(), Some(0));
    assert_eq!(v["cache"]["hits"].as_u64(), Some(1));
    assert_eq!(v["cache"]["misses"].as_u64(), Some(1));
    assert_eq!(v["cache"]["hit_rate"].as_f64(), Some(0.5));
    let shards = v["shards"].as_array().unwrap();
    assert_eq!(shards.len(), 3);
    let info = engine.shard_info();
    for (j, (shard, expect)) in shards.iter().zip(&info).enumerate() {
        assert_eq!(
            shard["users"].as_u64(),
            Some(expect.users as u64),
            "shard {j}"
        );
        assert_eq!(shard["snapshots"].as_u64(), Some(expect.snapshots as u64));
    }
    // ±∞ band edges encode as null.
    assert!(shards[0]["theta_lo"].is_null());
    assert!(shards[2]["theta_hi"].is_null());
}

/// **Acceptance criterion**: a real two-node deployment. Node B loads the
/// persisted `bundle.shard1.ganc` slice and serves its θ-band over HTTP;
/// node A serves band 0 locally and routes band 1 to B via `RemoteShard`.
/// Node A's HTTP responses are byte-identical to a server fronting a
/// single-process `ShardedEngine` over the full bundle — for every user,
/// both bands, plus batches that straddle the remote hop.
#[test]
fn two_node_remote_shard_deployment_matches_single_process() {
    let bundle = bundle_for(
        FittedModel::Pop(MostPopular::fit(&fixture().0)),
        CoverageKind::Dynamic,
    );
    let n_users = bundle.n_users();

    // Reference: single-process sharded engine behind HTTP.
    let reference = Arc::new(ShardedEngine::new(bundle.clone(), ShardConfig::quantile(2)));
    let (_ref_server, mut ref_client) = serve(Frontend::Sharded(Arc::clone(&reference)));

    // Deployment artifacts: one slice per node.
    let dir = std::env::temp_dir().join("ganc_http_two_node");
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("bundle.ganc");
    let paths = reference.save_shard_artifacts(&base).unwrap();
    assert_eq!(paths.len(), 2);
    assert!(paths[1].ends_with("bundle.shard1.ganc"));

    // Node B: loads shard 1's artifact, serves it as a plain single engine.
    let slice_b = ModelBundle::load(&paths[1]).unwrap();
    let node_b_engine = Arc::new(ServingEngine::new(slice_b, EngineConfig::default()));
    let (node_b, _) = serve(Frontend::Single(node_b_engine));

    // Node A: band 0 local (from shard 0's artifact), band 1 remote via B.
    let slice_a = ModelBundle::load(&paths[0]).unwrap();
    let cuts: Vec<f64> = reference.shard_info()[1..]
        .iter()
        .map(|i| i.theta_lo)
        .collect();
    let theta = Arc::clone(&slice_a.theta);
    let local = Arc::new(ServingEngine::new(slice_a, EngineConfig::default()));
    let remote = RemoteShard::connect(node_b.local_addr().to_string()).expect("node B reachable");
    let router = Arc::new(RouterNode::new(
        theta,
        cuts,
        vec![ShardRoute::Local(local), ShardRoute::remote(remote)],
    ));
    assert_eq!(router.shards(), 2);
    let (_node_a, mut client_a) = serve(Frontend::Router(Arc::clone(&router)));

    // Every user: node A's bytes == the single-process server's bytes.
    for u in 0..n_users {
        let path = format!("/v1/recommend/{u}");
        let via_router = client_a.request("GET", &path, None).unwrap();
        let via_reference = ref_client.request("GET", &path, None).unwrap();
        assert_eq!(via_router.status, 200, "user {u}");
        assert_eq!(
            String::from_utf8(via_router.body).unwrap(),
            String::from_utf8(via_reference.body).unwrap(),
            "user {u}: two-node response diverges from single-process"
        );
    }

    // Batches that straddle the remote hop: byte-identical too.
    let ids: Vec<String> = (0..n_users).rev().map(|u| u.to_string()).collect();
    let body = format!("{{\"users\":[{}]}}", ids.join(","));
    let via_router = client_a
        .request("POST", "/v1/recommend:batch", Some(&body))
        .unwrap();
    let via_reference = ref_client
        .request("POST", "/v1/recommend:batch", Some(&body))
        .unwrap();
    assert_eq!(via_router.status, 200);
    assert_eq!(
        String::from_utf8(via_router.body).unwrap(),
        String::from_utf8(via_reference.body).unwrap(),
        "two-node batch diverges from single-process"
    );

    for p in paths {
        std::fs::remove_file(p).ok();
    }
}
