//! Concurrent refit/hot-swap stress suite: reader threads hammer
//! `recommend` while background refits swap bundles. Every response must be
//! consistent with exactly one bundle generation (no torn reads mixing two
//! bundles), batches must be single-generation end to end, post-refit
//! output must equal a from-scratch `ModelBundle::fit` on the same
//! accumulated interactions, and ingests racing a swap must never be lost.
//!
//! The stress fixtures use an ItemAvg base model: ingestion then perturbs
//! only the ingested user's own output (candidate exclusion), so any user
//! outside the designated ingest set has a *constant* expected list per
//! generation — which is what lets readers attribute every observed
//! response to a generation and detect tearing exactly.

use ganc::core::CoverageKind;
use ganc::dataset::synth::DatasetProfile;
use ganc::dataset::{Interactions, ItemId, UserId};
use ganc::preference::generalized::GeneralizedConfig;
use ganc::recommender::item_avg::ItemAvg;
use ganc::recommender::pop::MostPopular;
use ganc::serve::refit::{merge_interactions, RefitOutcome, Refitter};
use ganc::serve::{
    EngineConfig, FitConfig, FittedModel, ModelBundle, RefitController, ServingEngine, ShardConfig,
    ShardedEngine,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const N: usize = 5;

fn fit_cfg() -> FitConfig {
    FitConfig {
        coverage: CoverageKind::Dynamic,
        sample_size: 12,
        ..FitConfig::new(N)
    }
}

fn item_avg_fitter() -> Arc<Refitter> {
    Arc::new(|train: &Interactions| {
        (
            FittedModel::ItemAvg(ItemAvg::fit(train, 5.0)),
            GeneralizedConfig::default().estimate(train),
        )
    })
}

fn fixture() -> (Interactions, ModelBundle) {
    let data = DatasetProfile::tiny().generate(13);
    let split = data.split_per_user(0.5, 4).unwrap();
    let train = split.train;
    let fitter = item_avg_fitter();
    let (model, theta) = fitter(&train);
    let bundle = ModelBundle::fit(model, theta, train.clone(), &fit_cfg());
    (train, bundle)
}

/// Expected per-user lists of one bundle generation, served by an
/// independent reference engine.
fn expected_lists(bundle: ModelBundle, users: u32) -> Vec<Arc<Vec<ItemId>>> {
    let reference = ServingEngine::new(bundle, EngineConfig::default());
    (0..users)
        .map(|u| reference.recommend(UserId(u)).unwrap())
        .collect()
}

/// Readers hammer single and batch requests while a swapper thread ingests
/// and refits; every traced response must match the expected output of the
/// generation it reports — a torn read (part old bundle, part new) cannot
/// match any single generation and fails the lookup.
#[test]
fn concurrent_swap_stress_has_no_torn_reads() {
    let (_, bundle) = fixture();
    let n_users = bundle.n_users();
    // Users the swapper ingests for; readers stay clear of them so reader
    // outputs are constant within a generation.
    let ingest_users: Vec<u32> = (n_users - 3..n_users).collect();
    let reader_users: Vec<UserId> = (0..n_users - 3).map(UserId).collect();

    let engine = Arc::new(ShardedEngine::new(bundle.clone(), ShardConfig::quantile(3)));
    type GenerationLists = HashMap<u64, Vec<Arc<Vec<ItemId>>>>;
    let expected: Arc<Mutex<GenerationLists>> = Arc::new(Mutex::new(HashMap::new()));
    expected
        .lock()
        .unwrap()
        .insert(0, expected_lists(bundle, n_users));
    let stop = Arc::new(AtomicBool::new(false));
    let fitter = item_avg_fitter();
    let cfg = fit_cfg();

    std::thread::scope(|scope| {
        // Swapper: ingest a little, refit, record the new generation's
        // expected outputs. 8 generations of churn.
        {
            let engine = Arc::clone(&engine);
            let expected = Arc::clone(&expected);
            let stop = Arc::clone(&stop);
            let fitter = Arc::clone(&fitter);
            let ingest_users = ingest_users.clone();
            scope.spawn(move || {
                for round in 0..8u32 {
                    for (k, &u) in ingest_users.iter().enumerate() {
                        let user = UserId(u);
                        let pick = engine.recommend(user).unwrap()[(round as usize + k) % N];
                        engine.ingest(user, pick, 4.0).unwrap();
                    }
                    match engine.refit_once(fitter.as_ref(), &cfg) {
                        RefitOutcome::Swapped { generation, bundle } => {
                            expected
                                .lock()
                                .unwrap()
                                .insert(generation, expected_lists((*bundle).clone(), n_users));
                        }
                        RefitOutcome::Raced => panic!("single swapper cannot race"),
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                stop.store(true, Ordering::Relaxed);
            });
        }

        // Readers: collect traced samples, verify after the churn ends (the
        // expected map for a generation is recorded after its swap, so
        // verification waits until all generations are known).
        let mut readers = Vec::new();
        for t in 0..4usize {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let reader_users = reader_users.clone();
            readers.push(scope.spawn(move || {
                let mut samples: Vec<(UserId, u64, Arc<Vec<ItemId>>)> = Vec::new();
                let mut batches: Vec<(u64, Vec<Arc<Vec<ItemId>>>)> = Vec::new();
                let mut k = t;
                while !stop.load(Ordering::Relaxed) {
                    let user = reader_users[k % reader_users.len()];
                    let (list, generation) = engine.recommend_traced(user).unwrap();
                    samples.push((user, generation, list));
                    if k % 7 == 0 {
                        let (answers, generation) = engine.recommend_batch_traced(&reader_users);
                        batches.push((
                            generation,
                            answers.into_iter().map(|a| a.unwrap()).collect(),
                        ));
                    }
                    k += 1;
                }
                (samples, batches)
            }));
        }

        let mut total_samples = 0usize;
        let mut seen_generations = std::collections::HashSet::new();
        for reader in readers {
            let (samples, batches) = reader.join().expect("reader panicked");
            let expected = expected.lock().unwrap();
            total_samples += samples.len();
            for (user, generation, list) in samples {
                seen_generations.insert(generation);
                let gen_lists = expected
                    .get(&generation)
                    .unwrap_or_else(|| panic!("response from unknown generation {generation}"));
                assert_eq!(
                    list,
                    gen_lists[user.idx()],
                    "torn read: {user:?} response matches no single bundle of generation \
                     {generation}"
                );
            }
            for (generation, lists) in batches {
                let gen_lists = expected
                    .get(&generation)
                    .unwrap_or_else(|| panic!("batch from unknown generation {generation}"));
                for (user, list) in reader_users.iter().zip(lists) {
                    assert_eq!(
                        list,
                        gen_lists[user.idx()],
                        "mixed-generation batch: {user:?} diverges from generation {generation}"
                    );
                }
            }
        }
        assert!(total_samples > 0, "readers never sampled");
        assert!(
            seen_generations.len() >= 2,
            "stress must observe multiple generations, saw {seen_generations:?}"
        );
    });
    assert_eq!(engine.generation(), 8);
}

/// Ingests fired concurrently with background refits are never lost: after
/// the churn quiesces, one final refit must land exactly on a from-scratch
/// fit of base train + every ingest ever submitted.
#[test]
fn racing_ingests_survive_swaps_and_match_from_scratch_fit() {
    let (train, bundle) = fixture();
    let n_users = bundle.n_users();
    let engine = Arc::new(ShardedEngine::new(bundle, ShardConfig::quantile(2)));
    let fitter = item_avg_fitter();
    let cfg = fit_cfg();

    // Single ingester thread (its send order defines last-wins), racing a
    // refit loop.
    let sent: Vec<(UserId, ItemId, f32)> = std::thread::scope(|scope| {
        let refitting = {
            let engine = Arc::clone(&engine);
            let fitter = Arc::clone(&fitter);
            scope.spawn(move || {
                for _ in 0..6 {
                    engine.refit_once(fitter.as_ref(), &cfg);
                }
            })
        };
        let ingester = {
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                let mut sent = Vec::new();
                for k in 0..40u32 {
                    let user = UserId(k % n_users);
                    let item = engine.recommend(user).unwrap()[k as usize % N];
                    let rating = 3.0 + (k % 3) as f32;
                    engine.ingest(user, item, rating).unwrap();
                    sent.push((user, item, rating));
                }
                sent
            })
        };
        refitting.join().expect("refitter panicked");
        ingester.join().expect("ingester panicked")
    });

    // Quiesced: one final refit consumes whatever tail remains.
    let outcome = engine.refit_once(fitter.as_ref(), &cfg);
    assert!(matches!(outcome, RefitOutcome::Swapped { .. }));
    assert_eq!(engine.pending_ingests(), 0);

    // From-scratch on the full accumulated stream (merge is associative
    // over refit boundaries: last rating per pair wins either way).
    let accumulated = merge_interactions(&train, &sent);
    let (model, theta) = fitter(&accumulated);
    let reference = ServingEngine::new(
        ModelBundle::fit(model, theta, accumulated, &cfg),
        EngineConfig::default(),
    );
    for u in 0..n_users {
        assert_eq!(
            engine.recommend(UserId(u)).unwrap(),
            reference.recommend(UserId(u)).unwrap(),
            "user {u} diverges from the from-scratch fit on accumulated interactions"
        );
    }
}

/// The background controller itself under reader load: batches re-queried
/// at an unchanged generation must be identical (within-generation
/// determinism for non-ingested users), and after shutdown the engine
/// serves exactly the from-scratch fit of everything ingested.
#[test]
fn controller_swaps_under_load_stay_consistent() {
    let (train, bundle) = fixture();
    let n_users = bundle.n_users();
    let reader_users: Vec<UserId> = (0..n_users - 2).map(UserId).collect();
    let engine = Arc::new(ShardedEngine::new(bundle, ShardConfig::quantile(3)));
    let fitter = item_avg_fitter();
    let cfg = fit_cfg();
    let mut controller = RefitController::spawn(
        Arc::clone(&engine),
        Arc::clone(&fitter),
        cfg,
        Duration::from_millis(1),
    );

    let sent: Vec<(UserId, ItemId, f32)> = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..3)
            .map(|t| {
                let engine = Arc::clone(&engine);
                let reader_users = reader_users.clone();
                scope.spawn(move || {
                    for k in 0..120usize {
                        let (first, g1) = engine.recommend_batch_traced(&reader_users);
                        let (second, g2) = engine.recommend_batch_traced(&reader_users);
                        if g1 == g2 {
                            for (a, b) in first.iter().zip(&second) {
                                assert_eq!(
                                    a.as_ref().unwrap(),
                                    b.as_ref().unwrap(),
                                    "same generation must serve identical lists (t={t} k={k})"
                                );
                            }
                        }
                    }
                })
            })
            .collect();
        let ingester = {
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                let mut sent = Vec::new();
                for k in 0..30u32 {
                    let user = UserId(n_users - 1 - (k % 2));
                    let item = engine.recommend(user).unwrap()[k as usize % N];
                    engine.ingest(user, item, 5.0).unwrap();
                    sent.push((user, item, 5.0));
                    std::thread::sleep(Duration::from_micros(200));
                }
                sent
            })
        };
        for r in readers {
            r.join().expect("reader panicked");
        }
        ingester.join().expect("ingester panicked")
    });

    controller.shutdown();
    assert!(controller.refits() > 0, "controller never refitted");
    // Quiesce and compare against the from-scratch fit.
    engine.refit_once(fitter.as_ref(), &cfg);
    let accumulated = merge_interactions(&train, &sent);
    let (model, theta) = fitter(&accumulated);
    let reference = ServingEngine::new(
        ModelBundle::fit(model, theta, accumulated, &cfg),
        EngineConfig::default(),
    );
    for u in 0..n_users {
        assert_eq!(
            engine.recommend(UserId(u)).unwrap(),
            reference.recommend(UserId(u)).unwrap(),
            "user {u} diverges after controller churn"
        );
    }
}

/// Regression for the batch/lock hoist: `recommend_batch` holds one state
/// read lock across the whole batch (cache hits included), so a hot swap
/// can never produce a mixed-generation batch. Alternating swaps between
/// two bundles with different θ make any mix detectable: generation parity
/// pins which bundle every response must come from.
#[test]
fn recommend_batch_is_single_generation_under_swaps() {
    let data = DatasetProfile::tiny().generate(21);
    let split = data.split_per_user(0.5, 3).unwrap();
    let train = split.train;
    let cfg = FitConfig {
        coverage: CoverageKind::Static,
        sample_size: 12,
        ..FitConfig::new(N)
    };
    let n_users = train.n_users();
    let mk = |theta: Vec<f64>| {
        ModelBundle::fit(
            FittedModel::Pop(MostPopular::fit(&train)),
            theta,
            train.clone(),
            &cfg,
        )
    };
    // Generation parity ↔ bundle: even = accuracy-only, odd = coverage-only.
    let bundle_even = mk(vec![0.0; n_users as usize]);
    let bundle_odd = mk(vec![1.0; n_users as usize]);
    let expected_even = expected_lists(bundle_even.clone(), n_users);
    let expected_odd = expected_lists(bundle_odd.clone(), n_users);
    assert!(
        expected_even.iter().zip(&expected_odd).any(|(a, b)| a != b),
        "θ flip must change at least one list or the test detects nothing"
    );

    let engine = Arc::new(ServingEngine::new(
        bundle_even.clone(),
        EngineConfig::default(),
    ));
    let users: Vec<UserId> = (0..n_users).map(UserId).collect();
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                for swap in 0..60u64 {
                    let next = if swap % 2 == 0 {
                        bundle_odd.clone()
                    } else {
                        bundle_even.clone()
                    };
                    assert_eq!(engine.swap_bundle(next), swap + 1);
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
        for _ in 0..3 {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let users = users.clone();
            let expected_even = &expected_even;
            let expected_odd = &expected_odd;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let (answers, generation) = engine.recommend_batch_traced(&users);
                    let expected = if generation % 2 == 0 {
                        expected_even
                    } else {
                        expected_odd
                    };
                    for (u, got) in users.iter().zip(answers) {
                        assert_eq!(
                            got.unwrap(),
                            expected[u.idx()],
                            "mixed-generation batch at generation {generation}, {u:?}"
                        );
                    }
                }
            });
        }
    });
    assert_eq!(engine.generation(), 60);
}
