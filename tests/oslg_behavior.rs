//! Integration tests of the OSLG optimizer's approximation behaviour and
//! the personalization semantics of θ (Algorithm 1, §III-C).

use ganc::core::accuracy::{AccuracyScorer, NormalizedScores};
use ganc::core::oslg::{assignment_order_objective, oslg_topn, OslgConfig, UserOrdering};
use ganc::core::{CoverageKind, GancBuilder};
use ganc::dataset::synth::DatasetProfile;
use ganc::dataset::UserId;
use ganc::preference::GeneralizedConfig;
use ganc::recommender::pop::MostPopular;

fn setup() -> (ganc::dataset::TrainTest, Vec<f64>, MostPopular) {
    let data = DatasetProfile::small().generate(55);
    let split = data.split_per_user(0.5, 2).unwrap();
    let theta = GeneralizedConfig::default().estimate(&split.train);
    let pop = MostPopular::fit(&split.train);
    (split, theta, pop)
}

#[test]
fn oslg_objective_tracks_full_locally_greedy_across_sample_sizes() {
    let (split, theta, pop) = setup();
    let train = &split.train;
    let arec = NormalizedScores::new(&pop);
    let n_users = train.n_users() as usize;
    let theta_order: Vec<UserId> = {
        let mut o: Vec<UserId> = (0..n_users as u32).map(UserId).collect();
        o.sort_by(|a, b| theta[a.idx()].partial_cmp(&theta[b.idx()]).unwrap());
        o
    };
    let objective = |sample: usize| -> f64 {
        let lists = oslg_topn(
            &arec,
            &theta,
            train,
            &OslgConfig {
                sample_size: sample,
                ..OslgConfig::new(5)
            },
        );
        assignment_order_objective(&lists, &theta_order, &theta, &arec, train.n_items())
    };
    let full = objective(n_users);
    for frac in [2, 4, 8] {
        let approx = objective(n_users / frac);
        assert!(
            approx > 0.75 * full,
            "S=|U|/{frac}: objective {approx:.1} vs full {full:.1}"
        );
    }
}

#[test]
fn personalization_sends_tail_items_to_tail_seeking_users() {
    let (split, _, pop) = setup();
    let train = &split.train;
    // Hand-crafted θ: first half of users are popularity seekers (θ=0.05),
    // second half are explorers (θ=0.95).
    let n_users = train.n_users() as usize;
    let theta: Vec<f64> = (0..n_users)
        .map(|u| if u < n_users / 2 { 0.05 } else { 0.95 })
        .collect();
    let lists = GancBuilder::new(5)
        .coverage(CoverageKind::Dynamic)
        .sample_size(n_users)
        .build_topn(&pop, &theta, train, 3)
        .into_lists();
    let popularity = train.item_popularity();
    let mean_pop_of = |range: std::ops::Range<usize>| -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for u in range {
            for item in &lists[u] {
                sum += popularity[item.idx()] as f64;
                count += 1;
            }
        }
        sum / count.max(1) as f64
    };
    let seekers = mean_pop_of(0..n_users / 2);
    let explorers = mean_pop_of(n_users / 2..n_users);
    assert!(
        seekers > 1.5 * explorers,
        "popularity seekers got mean pop {seekers:.1}, explorers {explorers:.1}"
    );
}

#[test]
fn snapshots_discount_already_recommended_items_for_later_users() {
    // With the increasing-θ order, the last (most tail-seeking) user's
    // coverage scores must reflect everything assigned before: their list
    // should avoid the globally most-recommended items.
    let (split, theta, pop) = setup();
    let train = &split.train;
    let n_users = train.n_users() as usize;
    let lists = GancBuilder::new(5)
        .coverage(CoverageKind::Dynamic)
        .sample_size(n_users)
        .build_topn(&pop, &theta, train, 7)
        .into_lists();
    // recommendation frequency across all users
    let mut freq = vec![0u32; train.n_items() as usize];
    for l in &lists {
        for i in l {
            freq[i.idx()] += 1;
        }
    }
    let max_freq = *freq.iter().max().unwrap();
    // The most tail-preferring user:
    let tailest = (0..n_users)
        .max_by(|&a, &b| theta[a].partial_cmp(&theta[b]).unwrap())
        .unwrap();
    for item in &lists[tailest] {
        assert!(
            freq[item.idx()] < max_freq.max(2),
            "tail-seeker received a saturated item (freq {})",
            freq[item.idx()]
        );
    }
}

#[test]
fn ordering_ablation_both_produce_valid_collections() {
    let (split, theta, pop) = setup();
    let train = &split.train;
    let arec = NormalizedScores::new(&pop);
    for ordering in [UserOrdering::IncreasingTheta, UserOrdering::Arbitrary] {
        let lists = oslg_topn(
            &arec,
            &theta,
            train,
            &OslgConfig {
                sample_size: 60,
                ordering,
                ..OslgConfig::new(5)
            },
        );
        assert_eq!(lists.len(), train.n_users() as usize);
        assert!(lists.iter().all(|l| l.len() == 5));
    }
}

#[test]
fn accuracy_scorer_names_flow_through() {
    let (split, _, pop) = setup();
    let arec = NormalizedScores::new(&pop);
    assert_eq!(arec.name(), "Pop");
    let _ = &split;
}
