//! The remote-hop coalescer ([`CoalescedShard`]) merges concurrent single
//! requests into one `/v1/recommend:batch` wire call — and must be
//! *invisible* in the answers: every coalesced single equals the
//! uncoalesced per-request response, every coalesced batch is served from
//! exactly one bundle generation even while refits hot-swap underneath,
//! the linger is bounded, and shutdown flushes instead of dropping.
//!
//! Determinism: the congestion that forces coalescing is injected with the
//! `ganc::http::testing` doubles (a gate parks the wire while a backlog
//! piles up — condition variables, not sleeps), and the churn equivalence
//! uses the per-generation attribution trick from `tests/refit_hotswap.rs`.

use ganc::core::coverage::CoverageKind;
use ganc::dataset::synth::DatasetProfile;
use ganc::dataset::{Interactions, ItemId, UserId};
use ganc::http::testing::{FlakyPeer, GatedPeer, RecordingPeer};
use ganc::http::{
    BackendError, CoalescedShard, Frontend, HttpServer, PeerTransport, RemoteShard, ServerConfig,
};
use ganc::preference::generalized::GeneralizedConfig;
use ganc::recommender::item_avg::ItemAvg;
use ganc::recommender::pop::MostPopular;
use ganc::serve::refit::Refitter;
use ganc::serve::{
    BatchConfig, EngineConfig, FitConfig, FittedModel, ModelBundle, ServeError, ServingEngine,
    ShardConfig, ShardedEngine,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const N: usize = 5;

fn fit_cfg() -> FitConfig {
    FitConfig {
        coverage: CoverageKind::Dynamic,
        sample_size: 12,
        ..FitConfig::new(N)
    }
}

fn pop_bundle() -> ModelBundle {
    let data = DatasetProfile::tiny().generate(59);
    let split = data.split_per_user(0.5, 4).unwrap();
    let theta = GeneralizedConfig::default().estimate(&split.train);
    let pop = MostPopular::fit(&split.train);
    ModelBundle::fit(FittedModel::Pop(pop), theta, split.train, &fit_cfg())
}

fn item_avg_fitter() -> Arc<Refitter> {
    Arc::new(|train: &Interactions| {
        (
            FittedModel::ItemAvg(ItemAvg::fit(train, 5.0)),
            GeneralizedConfig::default().estimate(train),
        )
    })
}

/// No linger, big cap: flushes are driven purely by arrival order, which
/// the gate controls — fully deterministic batch boundaries.
fn no_linger() -> BatchConfig {
    BatchConfig {
        max_batch: 64,
        max_wait: Duration::ZERO,
    }
}

/// Spin (yield, no sleep) until `cond` holds or a deadline proves it never
/// will.
fn await_cond(context: &str, cond: impl Fn() -> bool) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(
            std::time::Instant::now() < deadline,
            "timed out awaiting: {context}"
        );
        std::thread::yield_now();
    }
}

/// Park the wire behind a gate, pile five more singles onto a coalescer
/// mid-flight, lift the gate: the backlog must go out as ONE wire batch,
/// and every caller's answer must equal the uncoalesced per-request
/// response.
#[test]
fn backlogged_singles_coalesce_into_one_wire_batch() {
    let engine = Arc::new(ServingEngine::new(pop_bundle(), EngineConfig::default()));
    let frontend: Arc<dyn PeerTransport> = Arc::new(Frontend::Single(Arc::clone(&engine)));
    let gated = GatedPeer::new(frontend);
    let recording = RecordingPeer::new(Arc::clone(&gated) as Arc<dyn PeerTransport>);
    let coalesced = CoalescedShard::new(
        Arc::clone(&recording) as Arc<dyn PeerTransport>,
        no_linger(),
    );

    std::thread::scope(|scope| {
        let coalesced = &coalesced;
        let engine = &engine;
        let first = scope.spawn(move || coalesced.recommend_traced(UserId(0)));
        // The first single is on the wire (parked at the gate)...
        gated.wait_arrivals(1);
        // ...while five more pile up behind it.
        let backlog: Vec<_> = (1u32..6)
            .map(|u| scope.spawn(move || coalesced.recommend_traced(UserId(u))))
            .collect();
        await_cond("6 requests accepted", || coalesced.pending() == 6);
        gated.open();

        let (list, generation) = first.join().unwrap().expect("first single");
        assert_eq!(generation, 0);
        assert_eq!(list, engine.recommend(UserId(0)).unwrap());
        for (u, handle) in (1u32..6).zip(backlog) {
            let (list, generation) = handle.join().unwrap().expect("backlogged single");
            assert_eq!(generation, 0, "user {u}");
            assert_eq!(
                list,
                engine.recommend(UserId(u)).unwrap(),
                "coalesced single for user {u} diverges from per-request"
            );
        }
    });

    let batches = recording.batches();
    assert_eq!(
        batches.len(),
        2,
        "one in-flight single + one coalesced backlog"
    );
    assert_eq!(batches[0].users, vec![UserId(0)]);
    let mut merged = batches[1].users.clone();
    merged.sort_unstable();
    assert_eq!(
        merged,
        (1u32..6).map(UserId).collect::<Vec<_>>(),
        "the whole backlog must ride one wire call"
    );
    assert_eq!(batches[1].generation, Some(0));
    assert_eq!(recording.singles(), 0, "singles never bypass the coalescer");
}

/// Coalesced singles over a real HTTP hop equal both the uncoalesced
/// `RemoteShard` per-request responses and the engine's ground truth.
#[test]
fn coalesced_singles_match_uncoalesced_over_real_http() {
    let engine = Arc::new(ServingEngine::new(pop_bundle(), EngineConfig::default()));
    let n_users = engine.n_users();
    let server = HttpServer::bind(
        Frontend::Single(Arc::clone(&engine)),
        None,
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let coalesced = Arc::new(CoalescedShard::new(
        Arc::new(RemoteShard::connect(addr.clone()).unwrap()) as Arc<dyn PeerTransport>,
        BatchConfig::default(),
    ));
    let uncoalesced = RemoteShard::connect(addr).unwrap();

    std::thread::scope(|scope| {
        for t in 0..4u32 {
            let coalesced = Arc::clone(&coalesced);
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                for k in 0..40u32 {
                    let u = UserId((t * 17 + k) % n_users);
                    let (list, generation) = coalesced.recommend_traced(u).unwrap();
                    assert_eq!(generation, 0);
                    assert_eq!(list, engine.recommend(u).unwrap(), "user {u:?}");
                }
            });
        }
    });
    for u in (0..n_users).step_by(7) {
        let coalesced_answer = coalesced.recommend_traced(UserId(u)).unwrap();
        let direct_answer = uncoalesced.recommend_traced(UserId(u)).unwrap();
        assert_eq!(
            coalesced_answer, direct_answer,
            "user {u}: coalesced and per-request answers diverge on the wire"
        );
    }
}

/// Under `POST /admin/refit` churn, every coalesced answer attributes to
/// exactly one generation — the list it carries is that generation's
/// uncoalesced per-request response, never a mix.
#[test]
fn coalesced_batches_are_never_mixed_generation_under_refit_churn() {
    let data = DatasetProfile::tiny().generate(77);
    let split = data.split_per_user(0.5, 6).unwrap();
    let train = split.train;
    let fitter = item_avg_fitter();
    let (model, theta) = fitter(&train);
    let bundle = ModelBundle::fit(model, theta, train, &fit_cfg());
    let n_users = bundle.n_users();
    let ingest_users: Vec<u32> = (n_users - 3..n_users).collect();
    let reader_users: Vec<u32> = (0..n_users - 3).collect();

    let engine = Arc::new(ShardedEngine::new(bundle.clone(), ShardConfig::quantile(3)));
    // The refit endpoint drives the same refit_once path; exercise it over
    // real HTTP so the churn includes the wire.
    let server = HttpServer::bind(
        Frontend::Sharded(Arc::clone(&engine)),
        Some(ganc::http::RefitHook {
            fitter: Arc::clone(&fitter),
            cfg: fit_cfg(),
            cadence: None,
        }),
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let recording = RecordingPeer::new(
        Arc::new(RemoteShard::connect(addr.clone()).unwrap()) as Arc<dyn PeerTransport>
    );
    let coalesced = Arc::new(CoalescedShard::new(
        Arc::clone(&recording) as Arc<dyn PeerTransport>,
        BatchConfig {
            max_batch: 8,
            max_wait: Duration::from_micros(200),
        },
    ));

    let expected_lists = |bundle: ModelBundle| -> Vec<Arc<Vec<ItemId>>> {
        let reference = ServingEngine::new(bundle, EngineConfig::default());
        (0..n_users)
            .map(|u| reference.recommend(UserId(u)).unwrap())
            .collect()
    };
    type GenerationLists = HashMap<u64, Vec<Arc<Vec<ItemId>>>>;
    let expected: Arc<Mutex<GenerationLists>> = Arc::new(Mutex::new(HashMap::new()));
    expected.lock().unwrap().insert(0, expected_lists(bundle));
    let stop = Arc::new(AtomicBool::new(false));
    let sampled = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        // Churn: ingest through the coalesced transport, swap via
        // /admin/refit, record each new generation's reference output.
        {
            let engine = Arc::clone(&engine);
            let expected = Arc::clone(&expected);
            let stop = Arc::clone(&stop);
            let sampled = Arc::clone(&sampled);
            let coalesced = Arc::clone(&coalesced);
            let addr = addr.clone();
            let ingest_users = ingest_users.clone();
            scope.spawn(move || {
                let mut admin = ganc::http::HttpClient::new(addr);
                for round in 0..4u32 {
                    let floor = sampled.load(Ordering::Relaxed) + 15;
                    while sampled.load(Ordering::Relaxed) < floor {
                        std::thread::yield_now();
                    }
                    for (k, &u) in ingest_users.iter().enumerate() {
                        let (items, _) = coalesced.recommend_traced(UserId(u)).unwrap();
                        let pick = items[(round as usize + k) % N];
                        coalesced.ingest(UserId(u), pick, 4.0).unwrap();
                    }
                    let resp = admin.request("POST", "/admin/refit", None).unwrap();
                    assert_eq!(resp.status, 200, "refit endpoint");
                    let v = tinyjson::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
                    let generation = v["generation"].as_u64().unwrap();
                    let baseline = engine.baseline_bundle();
                    expected
                        .lock()
                        .unwrap()
                        .insert(generation, expected_lists((*baseline).clone()));
                }
                stop.store(true, Ordering::Relaxed);
            });
        }

        // Coalesced readers.
        let mut readers = Vec::new();
        for t in 0..3usize {
            let coalesced = Arc::clone(&coalesced);
            let stop = Arc::clone(&stop);
            let sampled = Arc::clone(&sampled);
            let reader_users = reader_users.clone();
            readers.push(scope.spawn(move || {
                let mut samples: Vec<(u32, u64, Arc<Vec<ItemId>>)> = Vec::new();
                let mut k = t;
                while !stop.load(Ordering::Relaxed) {
                    let u = reader_users[k % reader_users.len()];
                    let (list, generation) = coalesced.recommend_traced(UserId(u)).unwrap();
                    samples.push((u, generation, list));
                    sampled.fetch_add(1, Ordering::Relaxed);
                    k += 1;
                }
                samples
            }));
        }

        let mut seen_generations = std::collections::HashSet::new();
        let mut total = 0usize;
        for reader in readers {
            let samples = reader.join().expect("reader panicked");
            let expected = expected.lock().unwrap();
            total += samples.len();
            for (u, generation, list) in samples {
                seen_generations.insert(generation);
                let lists = expected
                    .get(&generation)
                    .unwrap_or_else(|| panic!("answer from unknown generation {generation}"));
                assert_eq!(
                    list, lists[u as usize],
                    "user {u}: coalesced answer mixes generations (tagged {generation})"
                );
            }
        }
        assert!(total > 0, "readers never sampled");
        assert!(
            seen_generations.len() >= 2,
            "churn must be observed across generations, saw {seen_generations:?}"
        );
    });

    // The wire witness: every coalesced batch reported exactly one
    // generation (the per-answer check above pins the lists to it).
    let batches = recording.batches();
    assert!(!batches.is_empty());
    for batch in &batches {
        assert!(
            batch.generation.is_some(),
            "a coalesced batch failed mid-churn"
        );
    }
    assert_eq!(engine.generation(), 4);
}

/// The linger is a bound, not a floor-fill: a lone request flushes as a
/// batch of one instead of waiting for companions that never come.
#[test]
fn lone_request_flushes_within_the_linger_bound() {
    let engine = Arc::new(ServingEngine::new(pop_bundle(), EngineConfig::default()));
    let frontend: Arc<dyn PeerTransport> = Arc::new(Frontend::Single(Arc::clone(&engine)));
    let recording = RecordingPeer::new(frontend);
    let coalesced = CoalescedShard::new(
        Arc::clone(&recording) as Arc<dyn PeerTransport>,
        BatchConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(20),
        },
    );
    let started = std::time::Instant::now();
    let (list, generation) = coalesced.recommend_traced(UserId(3)).unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "lone request must not wait for a full batch"
    );
    assert_eq!(generation, 0);
    assert_eq!(list, engine.recommend(UserId(3)).unwrap());
    let batches = recording.batches();
    assert_eq!(batches.len(), 1);
    assert_eq!(batches[0].users, vec![UserId(3)], "a batch of one is fine");
}

/// Shutdown flushes: requests already accepted are answered (from a worker
/// that would otherwise linger for a minute), then the worker exits.
#[test]
fn shutdown_flushes_accepted_requests() {
    let engine = Arc::new(ServingEngine::new(pop_bundle(), EngineConfig::default()));
    let frontend: Arc<dyn PeerTransport> = Arc::new(Frontend::Single(Arc::clone(&engine)));
    let recording = RecordingPeer::new(frontend);
    let coalesced = CoalescedShard::new(
        Arc::clone(&recording) as Arc<dyn PeerTransport>,
        BatchConfig {
            max_batch: 100,
            // A minute of linger: if shutdown did NOT cut it, this test
            // times out — completing instantly is the proof.
            max_wait: Duration::from_secs(60),
        },
    );
    std::thread::scope(|scope| {
        let coalesced = &coalesced;
        let handles: Vec<_> = (0u32..3)
            .map(|u| scope.spawn(move || coalesced.recommend_traced(UserId(u))))
            .collect();
        await_cond("3 requests accepted", || coalesced.pending() == 3);
        coalesced.shutdown();
        for (u, handle) in (0u32..3).zip(handles) {
            let (list, _) = handle.join().unwrap().expect("flushed on shutdown");
            assert_eq!(list, engine.recommend(UserId(u)).unwrap(), "user {u}");
        }
    });
    let total: usize = recording.batches().iter().map(|b| b.users.len()).sum();
    assert_eq!(total, 3, "every accepted request went out exactly once");
}

/// A whole-batch wire failure is delivered to *every* caller the batch
/// coalesced — no one hangs, no one gets a stale answer.
#[test]
fn wire_failure_reaches_every_coalesced_caller() {
    let engine = Arc::new(ServingEngine::new(pop_bundle(), EngineConfig::default()));
    let frontend: Arc<dyn PeerTransport> = Arc::new(Frontend::Single(engine));
    let gated = GatedPeer::new(frontend);
    let flaky = FlakyPeer::new(Arc::clone(&gated) as Arc<dyn PeerTransport>);
    let coalesced = CoalescedShard::new(Arc::clone(&flaky) as Arc<dyn PeerTransport>, no_linger());

    std::thread::scope(|scope| {
        let coalesced = &coalesced;
        let first = scope.spawn(move || coalesced.recommend_traced(UserId(0)));
        gated.wait_arrivals(1);
        let doomed: Vec<_> = (1u32..4)
            .map(|u| scope.spawn(move || coalesced.recommend_traced(UserId(u))))
            .collect();
        await_cond("4 requests accepted", || coalesced.pending() == 4);
        // The next wire call (the coalesced backlog of three) fails.
        flaky.fail_next(1);
        gated.open();
        assert!(first.join().unwrap().is_ok(), "pre-failure batch unharmed");
        for handle in doomed {
            match handle.join().unwrap() {
                Err(BackendError::Transport(msg)) => {
                    assert!(msg.contains("injected failure"), "{msg}");
                }
                other => panic!("caller must see the batch failure, got {other:?}"),
            }
        }
    });
    // The double healed; the coalescer keeps serving.
    assert!(coalesced.recommend_traced(UserId(5)).is_ok());
}

/// Per-user serving rejections stay per-caller: an unknown user coalesced
/// into a healthy batch gets their typed error, neighbors are unaffected.
#[test]
fn unknown_user_stays_a_per_caller_error() {
    let engine = Arc::new(ServingEngine::new(pop_bundle(), EngineConfig::default()));
    let n_users = engine.n_users();
    let frontend: Arc<dyn PeerTransport> = Arc::new(Frontend::Single(Arc::clone(&engine)));
    let gated = GatedPeer::new(frontend);
    let coalesced = CoalescedShard::new(Arc::clone(&gated) as Arc<dyn PeerTransport>, no_linger());
    let bad = UserId(n_users + 9);

    std::thread::scope(|scope| {
        let coalesced = &coalesced;
        let first = scope.spawn(move || coalesced.recommend_traced(UserId(1)));
        gated.wait_arrivals(1);
        let unknown = scope.spawn(move || coalesced.recommend_traced(bad));
        let neighbor = scope.spawn(move || coalesced.recommend_traced(UserId(2)));
        await_cond("3 requests accepted", || coalesced.pending() == 3);
        gated.open();
        assert!(first.join().unwrap().is_ok());
        match unknown.join().unwrap() {
            Err(BackendError::Serve(ServeError::UnknownUser(u))) => assert_eq!(u, bad),
            other => panic!("expected the typed rejection, got {other:?}"),
        }
        let (list, _) = neighbor.join().unwrap().expect("neighbor unaffected");
        assert_eq!(list, engine.recommend(UserId(2)).unwrap());
    });
}
