//! Property-based tests (proptest) over the core invariants the paper's
//! machinery rests on: submodularity of the Dyn objective, metric bounds,
//! split conservation, selection correctness, and estimator ranges.

use ganc::core::coverage::DynCoverage;
use ganc::dataset::dataset::{DatasetBuilder, RatingScale};
use ganc::dataset::stats::LongTail;
use ganc::dataset::{Interactions, ItemId, UserId};
use ganc::metrics::coverage::gini_of_frequencies;
use ganc::preference::simple::theta_normalized;
use ganc::preference::tfidf::theta_tfidf;
use ganc::preference::GeneralizedConfig;
use ganc::recommender::topn::select_top_n;
use proptest::prelude::*;

/// Random small rating datasets: up to 12 users × 10 items.
fn arb_dataset() -> impl Strategy<Value = Interactions> {
    proptest::collection::vec((0u32..12, 0u32..10, 1u32..=5), 1..120).prop_map(|triples| {
        let mut b = DatasetBuilder::new("prop", RatingScale::stars_1_5());
        for (u, i, r) in triples {
            b.push(UserId(u), ItemId(i), r as f32).unwrap();
        }
        b.build().unwrap().interactions()
    })
}

proptest! {
    /// Appendix B's driver: the marginal coverage gain of any item never
    /// increases as more recommendations are assigned (submodularity).
    #[test]
    fn dyn_coverage_gains_are_diminishing(
        assignments in proptest::collection::vec(0u32..8, 0..60),
        probe in 0u32..8,
    ) {
        let mut cov = DynCoverage::new(8);
        let mut last = cov.score(ItemId(probe));
        for a in assignments {
            cov.observe(&[ItemId(a)]);
            let now = cov.score(ItemId(probe));
            prop_assert!(now <= last + 1e-12, "gain increased: {now} > {last}");
            last = now;
        }
    }

    /// Gini is always in [0, 1]; 0 exactly for uniform positive vectors.
    #[test]
    fn gini_bounds_hold(freqs in proptest::collection::vec(0u32..1000, 1..200)) {
        let mut f = freqs.clone();
        let g = gini_of_frequencies(&mut f);
        prop_assert!((0.0..=1.0).contains(&g), "gini {g}");
    }

    #[test]
    fn gini_uniform_is_zero(n in 1usize..100, v in 1u32..50) {
        let mut f = vec![v; n];
        let g = gini_of_frequencies(&mut f);
        prop_assert!(g.abs() < 1e-9);
    }

    /// Per-user split conserves every rating on exactly one side.
    #[test]
    fn split_conserves_ratings(
        triples in proptest::collection::vec((0u32..8, 0u32..12, 1u32..=5), 1..80),
        kappa in 0.1f64..1.0,
        seed in 0u64..1000,
    ) {
        let mut b = DatasetBuilder::new("prop", RatingScale::stars_1_5());
        for (u, i, r) in triples {
            b.push(UserId(u), ItemId(i), r as f32).unwrap();
        }
        let d = b.build().unwrap();
        let s = d.split_per_user(kappa, seed).unwrap();
        prop_assert_eq!(s.train.nnz() + s.test.nnz(), d.n_ratings());
        for r in d.ratings() {
            let in_train = s.train.contains(r.user, r.item);
            let in_test = s.test.contains(r.user, r.item);
            prop_assert!(in_train ^ in_test);
        }
        // every user with ratings keeps a train rating
        for u in 0..d.n_users() {
            let total = s.train.user_degree(UserId(u)) + s.test.user_degree(UserId(u));
            if total > 0 {
                prop_assert!(s.train.user_degree(UserId(u)) >= 1);
            }
        }
    }

    /// select_top_n matches a naive sort on arbitrary score vectors.
    #[test]
    fn selection_matches_naive_sort(
        scores in proptest::collection::vec(-1e3f64..1e3, 1..60),
        n in 0usize..20,
    ) {
        let fast = select_top_n(&scores, 0..scores.len() as u32, n);
        let mut naive: Vec<u32> = (0..scores.len() as u32).collect();
        naive.sort_by(|&a, &b| {
            scores[b as usize]
                .total_cmp(&scores[a as usize])
                .then(a.cmp(&b))
        });
        naive.truncate(n);
        prop_assert_eq!(fast, naive.into_iter().map(ItemId).collect::<Vec<_>>());
    }

    /// Every preference estimator maps into [0, 1] on arbitrary data.
    #[test]
    fn theta_estimators_stay_in_unit_interval(train in arb_dataset()) {
        let lt = LongTail::pareto(&train);
        for theta in [
            theta_normalized(&train, &lt),
            theta_tfidf(&train),
            GeneralizedConfig::default().estimate(&train),
        ] {
            prop_assert!(theta.iter().all(|&t| (0.0..=1.0).contains(&t)));
            prop_assert_eq!(theta.len(), train.n_users() as usize);
        }
    }

    /// The long-tail set always carries at most the tail share of ratings.
    #[test]
    fn long_tail_mass_is_bounded(train in arb_dataset()) {
        let lt = LongTail::pareto(&train);
        let pop = train.item_popularity();
        let total: u64 = pop.iter().map(|&p| p as u64).sum();
        let tail_mass: u64 = (0..pop.len())
            .filter(|&i| lt.contains(ItemId(i as u32)))
            .map(|i| pop[i] as u64)
            .sum();
        // Sorted-by-popularity construction ⇒ tail mass ≤ 20% of total
        // (+1 item of slack for the boundary item).
        let max_single: u64 = pop.iter().map(|&p| p as u64).max().unwrap_or(0);
        prop_assert!(
            tail_mass <= (total as f64 * 0.2).ceil() as u64 + max_single,
            "tail mass {tail_mass} of {total}"
        );
    }

    /// Interactions round-trip: user-major and item-major views agree.
    #[test]
    fn csr_views_agree(train in arb_dataset()) {
        for u in 0..train.n_users() {
            let (items, vals) = train.user_row(UserId(u));
            for (&i, &v) in items.iter().zip(vals) {
                let (users, uvals) = train.item_col(ItemId(i));
                let k = users.binary_search(&u).expect("row entry must exist in column view");
                prop_assert_eq!(uvals[k], v);
            }
        }
        let by_rows: usize = (0..train.n_users())
            .map(|u| train.user_degree(UserId(u)))
            .sum();
        let by_cols: usize = (0..train.n_items())
            .map(|i| train.item_degree(ItemId(i)))
            .sum();
        prop_assert_eq!(by_rows, train.nnz());
        prop_assert_eq!(by_cols, train.nnz());
    }
}
