//! The parallel router fan-out is **byte-identical** to the sequential
//! reference dispatch — under adversarial timing, not just on a quiet
//! loopback. The deterministic doubles from `ganc::http::testing` inject
//! the adversities as pure synchronization (no sleeps, no sockets):
//!
//! * [`SlowPeer`] — an arbitrary band provably answers *after* every other
//!   touched band (it waits on their completion ledger);
//! * [`ReorderingPeer`] — all touched bands complete in reverse dispatch
//!   order;
//! * [`FlakyPeer`] — a band fails, and the error (which names the band,
//!   `BackendError::Band`) must be the same one the sequential path
//!   reports;
//! * generation skew mid-deployment must be detected with the identical
//!   error either way.
//!
//! Compared surfaces: per-slot lists, per-slot errors, ordering, the
//! batch's generation tag, and (for the HTTP case) the raw response bytes.

use ganc::core::coverage::CoverageKind;
use ganc::core::query::{band_bounds, cut_theta_bands, shard_of};
use ganc::dataset::synth::DatasetProfile;
use ganc::dataset::{ItemId, UserId};
use ganc::http::testing::{FlakyPeer, Ledger, LedgerPeer, ReorderGate, ReorderingPeer, SlowPeer};
use ganc::http::{
    BackendError, Frontend, HttpClient, HttpServer, PeerTransport, RouterNode, ServerConfig,
    ShardRoute,
};
use ganc::preference::generalized::GeneralizedConfig;
use ganc::recommender::pop::MostPopular;
use ganc::serve::{
    EngineConfig, FitConfig, FittedModel, ModelBundle, ServeError, ServingEngine, ShardConfig,
    ShardedEngine,
};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock};

const N: usize = 5;
const BAND_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn fixture_bundle() -> &'static ModelBundle {
    static BUNDLE: OnceLock<ModelBundle> = OnceLock::new();
    BUNDLE.get_or_init(|| {
        let data = DatasetProfile::tiny().generate(41);
        let split = data.split_per_user(0.5, 3).unwrap();
        let theta = GeneralizedConfig::default().estimate(&split.train);
        let pop = MostPopular::fit(&split.train);
        let cfg = FitConfig {
            coverage: CoverageKind::Dynamic,
            sample_size: 12,
            ..FitConfig::new(N)
        };
        ModelBundle::fit(FittedModel::Pop(pop), theta, split.train, &cfg)
    })
}

/// A router whose every band is a remote double chain
/// `SlowPeer(LedgerPeer(FlakyPeer(Frontend)))` over that band's bundle
/// slice — any band can be made slow or flaky per scenario.
struct Harness {
    router: RouterNode,
    slow: Vec<Arc<SlowPeer>>,
    flaky: Vec<Arc<FlakyPeer>>,
    engines: Vec<Arc<ServingEngine>>,
    slices: Vec<ModelBundle>,
    ledger: Arc<Ledger>,
    cuts: Vec<f64>,
}

impl Harness {
    fn build(bands: usize) -> Harness {
        let bundle = fixture_bundle();
        let cuts = cut_theta_bands(&bundle.theta, bands);
        let ledger = Ledger::new();
        let mut routes = Vec::new();
        let mut slow = Vec::new();
        let mut flaky = Vec::new();
        let mut engines = Vec::new();
        let mut slices = Vec::new();
        for j in 0..bands {
            let (lo, hi) = band_bounds(&cuts, j);
            let slice = bundle.slice_theta_band(lo, hi);
            let engine = Arc::new(ServingEngine::new(slice.clone(), EngineConfig::default()));
            let frontend: Arc<dyn PeerTransport> = Arc::new(Frontend::Single(Arc::clone(&engine)));
            let flaky_j = FlakyPeer::new(frontend);
            let ledgered: Arc<dyn PeerTransport> = Arc::new(LedgerPeer::new(
                Arc::clone(&flaky_j) as Arc<dyn PeerTransport>,
                Arc::clone(&ledger),
            ));
            let slow_j = SlowPeer::new(ledgered, Arc::clone(&ledger));
            routes.push(ShardRoute::Remote(
                Arc::clone(&slow_j) as Arc<dyn PeerTransport>
            ));
            slow.push(slow_j);
            flaky.push(flaky_j);
            engines.push(engine);
            slices.push(slice);
        }
        let router = RouterNode::new(Arc::clone(&bundle.theta), cuts.clone(), routes);
        Harness {
            router,
            slow,
            flaky,
            engines,
            slices,
            ledger,
            cuts,
        }
    }

    /// The distinct bands a batch's placeable users land in.
    fn touched(&self, users: &[UserId]) -> BTreeSet<usize> {
        let theta = &fixture_bundle().theta;
        users
            .iter()
            .filter_map(|u| theta.get(u.idx()).map(|&t| shard_of(&self.cuts, t)))
            .collect()
    }

    /// Arm `band` to answer only after every *other* touched band of the
    /// next batch has completed.
    fn arm_slow(&self, band: usize, users: &[UserId]) {
        let others = self
            .touched(users)
            .into_iter()
            .filter(|&j| j != band)
            .count() as u64;
        self.slow[band].delay_until(self.ledger.completed() + others);
    }
}

type Batch = Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError>;

/// Both dispatch strategies must produce the same value — including which
/// error, when they fail.
fn assert_equivalent(sequential: Batch, parallel: Batch, context: &str) {
    match (sequential, parallel) {
        (Ok((seq_slots, seq_gen)), Ok((par_slots, par_gen))) => {
            assert_eq!(seq_slots, par_slots, "{context}: slots diverge");
            assert_eq!(seq_gen, par_gen, "{context}: generation tag diverges");
        }
        (Err(seq), Err(par)) => {
            assert_eq!(
                format!("{seq:?}"),
                format!("{par:?}"),
                "{context}: errors diverge"
            );
        }
        (seq, par) => panic!("{context}: outcome diverges: {seq:?} vs {par:?}"),
    }
}

proptest! {
    /// Across band counts {1,2,4,7}, arbitrary batches (straddling bands,
    /// duplicates, unknown users) and an arbitrary provably-last band:
    /// the parallel fan-out's slots, ordering, per-slot errors, and
    /// generation tag are identical to the sequential reference.
    #[test]
    fn parallel_fanout_matches_sequential_under_a_slow_band(
        s_idx in 0usize..BAND_COUNTS.len(),
        slow_pick in 0usize..7,
        raw_users in proptest::collection::vec(0u32..60, 0..30),
    ) {
        let bands = BAND_COUNTS[s_idx];
        let h = Harness::build(bands);
        // 0..60 over a 50-user fixture: unknown users ride along in-slot.
        let users: Vec<UserId> = raw_users.iter().map(|&u| UserId(u)).collect();
        let sequential = h.router.recommend_batch_traced_sequential(&users);
        let slow_band = slow_pick % bands;
        h.arm_slow(slow_band, &users);
        let parallel = h.router.recommend_batch_traced(&users);
        h.slow[slow_band].delay_until(0);
        let context = format!("bands={bands} slow={slow_band} users={raw_users:?}");
        match (&sequential, &parallel) {
            (Ok(_), Ok(_)) => {}
            (seq, par) => prop_assert!(false, "healthy bands must answer: {seq:?} vs {par:?}"),
        }
        assert_equivalent(sequential, parallel, &context);
    }
}

/// A dense straddling batch (every user, reversed, plus duplicates) with
/// the middle band provably last: parallel == sequential, and both equal
/// the in-process sharded engine.
#[test]
fn straddling_batch_with_slow_band_matches_in_process_sharded() {
    let bundle = fixture_bundle();
    let h = Harness::build(4);
    let sharded = ShardedEngine::new(bundle.clone(), ShardConfig::quantile(4));
    let mut users: Vec<UserId> = (0..bundle.n_users()).rev().map(UserId).collect();
    users.extend((0..10).map(UserId));

    let sequential = h.router.recommend_batch_traced_sequential(&users);
    h.arm_slow(2, &users);
    let parallel = h.router.recommend_batch_traced(&users);
    h.slow[2].delay_until(0);

    let (expected_slots, expected_gen) = sharded.recommend_batch_traced(&users);
    let (par_slots, par_gen) = parallel.as_ref().expect("healthy dispatch").clone();
    assert_eq!(par_slots, expected_slots, "router diverges from in-process");
    assert_eq!(par_gen, expected_gen);
    assert_equivalent(sequential, parallel, "straddle/slow band 2");
}

/// All four touched bands complete in reverse dispatch order: reassembly
/// must not depend on completion order.
#[test]
fn reordered_band_completion_preserves_order_and_results() {
    let bundle = fixture_bundle();
    let cuts = cut_theta_bands(&bundle.theta, 4);
    let gate = ReorderGate::new();
    let routes: Vec<ShardRoute> = (0..4)
        .map(|j| {
            let (lo, hi) = band_bounds(&cuts, j);
            let engine = Arc::new(ServingEngine::new(
                bundle.slice_theta_band(lo, hi),
                EngineConfig::default(),
            ));
            let frontend: Arc<dyn PeerTransport> = Arc::new(Frontend::Single(engine));
            ShardRoute::remote(ReorderingPeer::new(frontend, Arc::clone(&gate)))
        })
        .collect();
    let router = RouterNode::new(Arc::clone(&bundle.theta), cuts.clone(), routes);
    let users: Vec<UserId> = (0..bundle.n_users()).map(UserId).collect();
    let touched: BTreeSet<usize> = users
        .iter()
        .map(|u| shard_of(&cuts, bundle.theta[u.idx()]))
        .collect();
    assert_eq!(touched.len(), 4, "fixture must straddle all bands");

    // Sequential reference first, gate disarmed (an armed gate would
    // deadlock a one-at-a-time dispatcher — that is the point of it).
    let sequential = router.recommend_batch_traced_sequential(&users);
    gate.arm(4);
    let parallel = router.recommend_batch_traced(&users);
    assert_equivalent(sequential, parallel, "LIFO band completion");
}

/// A failed band produces the *same* error under both strategies, and the
/// error names the band index instead of surfacing positionally.
#[test]
fn failed_band_error_is_identical_and_carries_the_band_index() {
    let h = Harness::build(4);
    let users: Vec<UserId> = (0..fixture_bundle().n_users()).map(UserId).collect();
    let touched: Vec<usize> = h.touched(&users).into_iter().collect();
    assert_eq!(touched, vec![0, 1, 2, 3]);

    for &bad in &[0usize, 2] {
        h.flaky[bad].fail_next(1);
        let sequential = h.router.recommend_batch_traced_sequential(&users);
        h.flaky[bad].fail_next(1);
        let parallel = h.router.recommend_batch_traced(&users);
        let err = match &parallel {
            Err(BackendError::Band { band, message }) => {
                assert_eq!(*band, bad, "error must carry the failed band");
                assert!(
                    message.contains("injected failure"),
                    "cause preserved: {message}"
                );
                format!("{:?}", parallel.as_ref().err().unwrap())
            }
            other => panic!("expected a band error, got {other:?}"),
        };
        assert_equivalent(sequential, parallel, &format!("flaky band {bad}"));
        drop(err);
    }

    // Two bands down: both strategies report the lowest touched band (the
    // sequential path never even dispatches past it; the parallel path
    // folds in band order).
    h.flaky[1].fail_next(1);
    h.flaky[3].fail_next(1);
    let sequential = h.router.recommend_batch_traced_sequential(&users);
    h.flaky[1].fail_next(1);
    h.flaky[3].fail_next(1);
    let parallel = h.router.recommend_batch_traced(&users);
    assert!(
        matches!(parallel, Err(BackendError::Band { band: 1, .. })),
        "lowest failed band wins: {parallel:?}"
    );
    assert_equivalent(sequential, parallel, "two flaky bands");
    // Doubles healed: the deployment serves again.
    assert!(h.router.recommend_batch_traced(&users).is_ok());
}

/// Generation tags ride through the parallel dispatch, and skew between
/// bands is detected with the identical hard error.
#[test]
fn generation_skew_detection_is_byte_identical() {
    let h = Harness::build(2);
    let users: Vec<UserId> = (0..fixture_bundle().n_users()).map(UserId).collect();
    assert_eq!(h.touched(&users).len(), 2);

    // Band 1 hot-swaps (same content, new generation): the deployment is
    // skewed and both strategies must refuse identically.
    h.engines[1].swap_bundle(h.slices[1].clone());
    let sequential = h.router.recommend_batch_traced_sequential(&users);
    let parallel = h.router.recommend_batch_traced(&users);
    assert!(
        matches!(&parallel, Err(BackendError::Transport(msg)) if msg.contains("generation skew")),
        "skew must be a hard error: {parallel:?}"
    );
    assert_equivalent(sequential, parallel, "skewed deployment");

    // Band 0 catches up: healthy again, and the batch is tagged with the
    // new generation under both strategies.
    h.engines[0].swap_bundle(h.slices[0].clone());
    let sequential = h.router.recommend_batch_traced_sequential(&users);
    let parallel = h.router.recommend_batch_traced(&users);
    let (_, generation) = parallel.as_ref().expect("aligned deployment").clone();
    assert_eq!(generation, 1, "batch must carry the swapped generation");
    assert_equivalent(sequential, parallel, "re-aligned deployment");
}

/// Over real HTTP: a router front-end with a provably-last band answers
/// byte-identically to a server over the in-process sharded engine.
#[test]
fn http_batch_bytes_identical_with_a_slow_band() {
    let bundle = fixture_bundle();
    let h = Harness::build(4);
    let reference = Arc::new(ShardedEngine::new(bundle.clone(), ShardConfig::quantile(4)));
    let ref_server = HttpServer::bind(
        Frontend::Sharded(reference),
        None,
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();

    let users: Vec<UserId> = (0..bundle.n_users()).rev().map(UserId).collect();
    h.arm_slow(1, &users);
    let router_server = HttpServer::bind(
        Frontend::Router(Arc::new(h.router)),
        None,
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();

    let ids: Vec<String> = users.iter().map(|u| u.0.to_string()).collect();
    let body = format!("{{\"users\":[{}]}}", ids.join(","));
    let mut router_client = HttpClient::new(router_server.local_addr().to_string());
    let mut ref_client = HttpClient::new(ref_server.local_addr().to_string());
    let via_router = router_client
        .request("POST", "/v1/recommend:batch", Some(&body))
        .unwrap();
    let via_reference = ref_client
        .request("POST", "/v1/recommend:batch", Some(&body))
        .unwrap();
    assert_eq!(via_router.status, 200);
    assert_eq!(
        String::from_utf8(via_router.body).unwrap(),
        String::from_utf8(via_reference.body).unwrap(),
        "slow-band parallel fan-out changed the wire bytes"
    );
}

/// Unknown users in a batch stay in-slot errors (never a whole-batch
/// failure), identically under both strategies, even when every placeable
/// user routes to one band that is provably last.
#[test]
fn unknown_users_stay_in_slot_under_parallel_dispatch() {
    let h = Harness::build(2);
    let n = fixture_bundle().n_users();
    let bad = UserId(n + 7);
    let users = vec![UserId(0), bad, UserId(0), UserId(n + 100)];
    let sequential = h.router.recommend_batch_traced_sequential(&users);
    let band = h.touched(&users).into_iter().next().unwrap();
    h.arm_slow(band, &users);
    let parallel = h.router.recommend_batch_traced(&users);
    h.slow[band].delay_until(0);
    let (slots, _) = parallel.as_ref().expect("in-slot errors only").clone();
    assert_eq!(slots[1], Err(ServeError::UnknownUser(bad)));
    assert_eq!(slots[3], Err(ServeError::UnknownUser(UserId(n + 100))));
    assert!(slots[0].is_ok());
    assert_eq!(slots[0], slots[2]);
    assert_equivalent(sequential, parallel, "unknown users in-slot");
}
