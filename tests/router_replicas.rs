//! Replicated θ-bands are **byte-identical** to single-backend routes —
//! under every injected fault class, not just on a healthy loopback. The
//! deterministic doubles from `ganc::http::testing` inject the faults as
//! pure synchronization (no sleeps, no sockets):
//!
//! * a **parked primary** ([`GatedPeer`] closed) forces a hedge — with a
//!   zero budget deterministically, with a real budget only once the
//!   injected [`ManualClock`] crosses the deadline;
//! * a **dead/flaky primary** ([`FlakyPeer`]) forces failover, feeds the
//!   consecutive-failure breaker, and (once ejected) is restored by
//!   [`ReplicaSet::probe_once`] with the primary rotating back;
//! * a **mid-hedge hot-swap** must never mix bundle generations inside
//!   one batch — a sub-batch is always one replica's answer;
//! * **all replicas down** must surface the existing machine-readable
//!   `BackendError::Band` contract, in-process and over HTTP.
//!
//! Compared surfaces: per-slot lists, per-slot errors, ordering, the
//! batch's generation tag, replica-set counters, and (for the HTTP case)
//! the raw response bytes.

use ganc::core::coverage::CoverageKind;
use ganc::core::query::{band_bounds, cut_theta_bands, shard_of};
use ganc::dataset::synth::DatasetProfile;
use ganc::dataset::{ItemId, UserId};
use ganc::http::testing::{FlakyPeer, GatedPeer, RecordingPeer};
use ganc::http::{
    BackendError, CoalescedShard, Frontend, HttpClient, HttpServer, PeerTransport, ReplicaConfig,
    ReplicaSet, RouterNode, ServerConfig, ShardRoute,
};
use ganc::obs::{Clock, ManualClock};
use ganc::preference::generalized::GeneralizedConfig;
use ganc::recommender::pop::MostPopular;
use ganc::serve::{
    BatchConfig, DurableConfig, EngineConfig, FitConfig, FittedModel, ModelBundle, ServeError,
    ServingEngine, ShardConfig, ShardedEngine,
};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const N: usize = 5;
const BAND_COUNTS: [usize; 3] = [1, 2, 4];

fn fixture_bundle() -> &'static ModelBundle {
    static BUNDLE: OnceLock<ModelBundle> = OnceLock::new();
    BUNDLE.get_or_init(|| {
        let data = DatasetProfile::tiny().generate(41);
        let split = data.split_per_user(0.5, 3).unwrap();
        let theta = GeneralizedConfig::default().estimate(&split.train);
        let pop = MostPopular::fit(&split.train);
        let cfg = FitConfig {
            coverage: CoverageKind::Dynamic,
            sample_size: 12,
            ..FitConfig::new(N)
        };
        ModelBundle::fit(FittedModel::Pop(pop), theta, split.train, &cfg)
    })
}

/// Zero hedge budget: every first attempt hedges immediately — the
/// deterministic way to exercise the hedge path without a clock thread.
fn hedge_now() -> ReplicaConfig {
    ReplicaConfig {
        hedge_budget: Some(Duration::ZERO),
        ..ReplicaConfig::default()
    }
}

/// Two routers over the same fixture: `replicated` serves every band from
/// a replica group of `GatedPeer(FlakyPeer(Frontend))` chains over that
/// band's slice, `reference` serves each band from one plain local engine
/// over an identical slice — the byte-identity oracle. Gates start open;
/// a test closes one to park a replica.
struct Harness {
    replicated: RouterNode,
    reference: RouterNode,
    sets: Vec<Arc<ReplicaSet>>,
    /// `gates[band][replica]`.
    gates: Vec<Vec<Arc<GatedPeer>>>,
    /// `flaky[band][replica]`.
    flaky: Vec<Vec<Arc<FlakyPeer>>>,
    /// `engines[band][replica]`.
    engines: Vec<Vec<Arc<ServingEngine>>>,
    slices: Vec<ModelBundle>,
    clock: Arc<ManualClock>,
    cuts: Vec<f64>,
}

impl Harness {
    fn build(bands: usize, replicas: usize, cfg: ReplicaConfig) -> Harness {
        let bundle = fixture_bundle();
        let cuts = cut_theta_bands(&bundle.theta, bands);
        let clock = Arc::new(ManualClock::new());
        let mut routes = Vec::new();
        let mut ref_routes = Vec::new();
        let mut sets = Vec::new();
        let mut gates = Vec::new();
        let mut flaky = Vec::new();
        let mut engines = Vec::new();
        let mut slices = Vec::new();
        for j in 0..bands {
            let (lo, hi) = band_bounds(&cuts, j);
            let slice = bundle.slice_theta_band(lo, hi);
            let mut peers: Vec<Arc<dyn PeerTransport>> = Vec::new();
            let mut band_gates = Vec::new();
            let mut band_flaky = Vec::new();
            let mut band_engines = Vec::new();
            for _ in 0..replicas {
                let engine = Arc::new(ServingEngine::new(slice.clone(), EngineConfig::default()));
                let frontend: Arc<dyn PeerTransport> =
                    Arc::new(Frontend::Single(Arc::clone(&engine)));
                let flaky_r = FlakyPeer::new(frontend);
                let gate = GatedPeer::new(Arc::clone(&flaky_r) as Arc<dyn PeerTransport>);
                gate.open();
                peers.push(Arc::clone(&gate) as Arc<dyn PeerTransport>);
                band_gates.push(gate);
                band_flaky.push(flaky_r);
                band_engines.push(engine);
            }
            let set = ReplicaSet::with_clock(peers, cfg, Arc::clone(&clock) as Arc<dyn Clock>);
            routes.push(ShardRoute::Replicas(Arc::clone(&set)));
            ref_routes.push(ShardRoute::Local(Arc::new(ServingEngine::new(
                slice.clone(),
                EngineConfig::default(),
            ))));
            sets.push(set);
            gates.push(band_gates);
            flaky.push(band_flaky);
            engines.push(band_engines);
            slices.push(slice);
        }
        let theta = Arc::clone(&bundle.theta);
        Harness {
            replicated: RouterNode::new(Arc::clone(&theta), cuts.clone(), routes),
            reference: RouterNode::new(theta, cuts.clone(), ref_routes),
            sets,
            gates,
            flaky,
            engines,
            slices,
            clock,
            cuts,
        }
    }

    /// Every fixture user, reversed, plus duplicates — straddles every
    /// band.
    fn straddling_batch(&self) -> Vec<UserId> {
        let mut users: Vec<UserId> = (0..fixture_bundle().n_users()).rev().map(UserId).collect();
        users.extend((0..10).map(UserId));
        users
    }

    /// The band a user routes to.
    fn band_of(&self, user: UserId) -> usize {
        shard_of(&self.cuts, fixture_bundle().theta[user.idx()])
    }

    /// A user routed to `band` (the fixture straddles every band).
    fn user_in(&self, band: usize) -> UserId {
        (0..fixture_bundle().n_users())
            .map(UserId)
            .find(|&u| self.band_of(u) == band)
            .expect("fixture covers every band")
    }

    /// Release every parked straggler so detached hedge threads finish.
    fn open_all(&self) {
        for band in &self.gates {
            for gate in band {
                gate.open();
            }
        }
    }
}

type Batch = Result<(Vec<Result<Arc<Vec<ItemId>>, ServeError>>, u64), BackendError>;

/// Both outcomes must be the same value — including which error.
fn assert_equivalent(a: Batch, b: Batch, context: &str) {
    match (a, b) {
        (Ok((a_slots, a_gen)), Ok((b_slots, b_gen))) => {
            assert_eq!(a_slots, b_slots, "{context}: slots diverge");
            assert_eq!(a_gen, b_gen, "{context}: generation tag diverges");
        }
        (Err(a), Err(b)) => {
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "{context}: errors diverge"
            );
        }
        (a, b) => panic!("{context}: outcome diverges: {a:?} vs {b:?}"),
    }
}

proptest! {
    /// Across band counts, arbitrary batches (straddling bands,
    /// duplicates, unknown users), with hedging armed on *every* dispatch
    /// (zero budget): the replicated router's parallel fan-out, its
    /// sequential reference, and the single-backend reference router all
    /// produce identical slots, ordering, and generation tags.
    #[test]
    fn replicated_hedged_dispatch_matches_single_backend_reference(
        b_idx in 0usize..BAND_COUNTS.len(),
        raw_users in proptest::collection::vec(0u32..60, 0..30),
    ) {
        let bands = BAND_COUNTS[b_idx];
        let h = Harness::build(bands, 2, hedge_now());
        // 0..60 over a 50-user fixture: unknown users ride along in-slot.
        let users: Vec<UserId> = raw_users.iter().map(|&u| UserId(u)).collect();
        let context = format!("bands={bands} users={raw_users:?}");
        let expected = h.reference.recommend_batch_traced(&users);
        let sequential = h.replicated.recommend_batch_traced_sequential(&users);
        let parallel = h.replicated.recommend_batch_traced(&users);
        match (&expected, &parallel) {
            (Ok(_), Ok(_)) => {}
            (e, p) => prop_assert!(false, "healthy deployments must answer: {e:?} vs {p:?}"),
        }
        assert_equivalent(expected.clone(), parallel, &context);
        assert_equivalent(expected, sequential, &context);
    }
}

/// A parked primary (gate closed) forces the hedge: the batch is answered
/// by the other replica, byte-identical to the reference, under both
/// dispatch strategies — and the hedge counter moves while the failover
/// counter stays at zero (a slow primary is not a failed primary).
#[test]
fn parked_primary_hedges_to_the_next_replica() {
    let h = Harness::build(2, 2, hedge_now());
    let users = h.straddling_batch();
    h.gates[0][0].close();

    let expected = h.reference.recommend_batch_traced(&users);
    let sequential = h.replicated.recommend_batch_traced_sequential(&users);
    let parallel = h.replicated.recommend_batch_traced(&users);
    assert_equivalent(expected.clone(), sequential, "parked primary, sequential");
    assert_equivalent(expected, parallel, "parked primary, parallel");

    let single = h
        .replicated
        .recommend_traced(h.user_in(0))
        .expect("hedge answers singles too");
    assert_eq!(
        single,
        h.reference.recommend_traced(h.user_in(0)).unwrap(),
        "single-request hedge diverges"
    );

    let stats = h.sets[0].stats();
    assert!(stats.hedges >= 3, "every band-0 dispatch hedged: {stats:?}");
    assert_eq!(stats.failovers, 0, "a parked primary is not a failure");
    assert_eq!(stats.healthy, 2, "nobody failed, nobody is ejected");
    h.open_all();
}

/// A dead primary (one injected failure) fails over to the next replica
/// without surfacing: the caller sees the reference answer, the failover
/// counter moves, and one failure is below the breaker threshold so
/// nothing is ejected.
#[test]
fn dead_primary_fails_over_without_surfacing() {
    let h = Harness::build(2, 2, ReplicaConfig::default());
    let users = h.straddling_batch();
    h.flaky[0][0].fail_next(1);

    let expected = h.reference.recommend_batch_traced(&users);
    let parallel = h.replicated.recommend_batch_traced(&users);
    assert_equivalent(expected, parallel, "dead primary");

    let stats = h.sets[0].stats();
    assert_eq!(stats.failovers, 1, "{stats:?}");
    assert_eq!(stats.hedges, 0, "no budget configured, no hedging");
    assert_eq!(stats.healthy, 2, "one failure is below the threshold");
    assert_eq!(stats.primary, 0, "primary only rotates on ejection");

    // Healed: the next batch is served by the primary again, no new
    // failover.
    let again = h.replicated.recommend_batch_traced(&users);
    assert!(again.is_ok());
    assert_eq!(h.sets[0].stats().failovers, 1);
}

/// Consecutive failures cross the breaker threshold: the replica is
/// ejected, the primary rotates to the next healthy index, and later
/// dispatches skip the ejected replica entirely (no more failovers).
#[test]
fn breaker_ejects_the_primary_and_rotates() {
    let cfg = ReplicaConfig {
        failure_threshold: 2,
        ..ReplicaConfig::default()
    };
    let h = Harness::build(1, 3, cfg);
    let users = h.straddling_batch();
    h.flaky[0][0].fail_next(2);

    for round in 0..2 {
        let expected = h.reference.recommend_batch_traced(&users);
        let parallel = h.replicated.recommend_batch_traced(&users);
        assert_equivalent(expected, parallel, &format!("breaker round {round}"));
    }
    let stats = h.sets[0].stats();
    assert_eq!(stats.failovers, 2, "{stats:?}");
    assert_eq!(stats.ejections, 1, "{stats:?}");
    assert_eq!(stats.healthy, 2, "replica 0 is out of rotation");
    assert_eq!(stats.primary, 1, "primary rotated off the ejected replica");

    // The ejected replica is skipped: dispatch goes straight to the new
    // primary, no failover.
    let after = h.replicated.recommend_batch_traced(&users);
    assert!(after.is_ok());
    assert_eq!(
        h.sets[0].stats().failovers,
        2,
        "no retry against an ejected replica"
    );
}

/// A probe pass restores an ejected replica that answers health checks
/// again and rotates the primary back to the lowest healthy index — the
/// recovered original primary takes over.
#[test]
fn probe_restores_the_ejected_replica_and_rotates_back() {
    let cfg = ReplicaConfig {
        failure_threshold: 1,
        ..ReplicaConfig::default()
    };
    let h = Harness::build(1, 2, cfg);
    let users = h.straddling_batch();
    h.flaky[0][0].fail_next(1);
    let expected = h.reference.recommend_batch_traced(&users);
    let parallel = h.replicated.recommend_batch_traced(&users);
    assert_equivalent(expected, parallel, "threshold-1 ejection");
    let tripped = h.sets[0].stats();
    assert_eq!(
        (tripped.ejections, tripped.healthy, tripped.primary),
        (1, 1, 1)
    );

    // The flaky double is healed (its failure budget is spent), so the
    // probe's health check answers and the replica rejoins rotation.
    assert_eq!(h.sets[0].probe_once(), 1, "one replica restored");
    assert_eq!(h.sets[0].probe_once(), 0, "probe is idempotent");
    let restored = h.sets[0].stats();
    assert_eq!((restored.restores, restored.healthy), (1, 2));
    assert_eq!(
        restored.primary, 0,
        "recovered original primary rotates back"
    );

    let after = h.replicated.recommend_batch_traced(&users);
    let reference = h.reference.recommend_batch_traced(&users);
    assert_equivalent(reference, after, "after restore");
}

/// Every replica of one band down: both dispatch strategies surface the
/// identical `BackendError::Band` naming that band, with the underlying
/// cause preserved — and the deployment serves again once the band heals.
#[test]
fn all_replicas_down_surfaces_the_band_error_contract() {
    let h = Harness::build(2, 2, ReplicaConfig::default());
    let users = h.straddling_batch();

    h.flaky[1][0].fail_next(8);
    h.flaky[1][1].fail_next(8);
    let sequential = h.replicated.recommend_batch_traced_sequential(&users);
    let parallel = h.replicated.recommend_batch_traced(&users);
    match &parallel {
        Err(BackendError::Band { band, message }) => {
            assert_eq!(*band, 1, "error must carry the failed band");
            assert!(
                message.contains("injected failure"),
                "cause preserved: {message}"
            );
        }
        other => panic!("expected a band error, got {other:?}"),
    }
    assert_equivalent(sequential, parallel, "all band-1 replicas down");

    // Healed: byte-identical service resumes.
    h.flaky[1][0].fail_next(0);
    h.flaky[1][1].fail_next(0);
    let expected = h.reference.recommend_batch_traced(&users);
    let healed = h.replicated.recommend_batch_traced(&users);
    assert_equivalent(expected, healed, "healed band");
}

/// The same all-replicas-down failure over real HTTP: the response is the
/// existing 502 contract with the machine-readable `"band"` field.
#[test]
fn all_replicas_down_over_http_keeps_the_band_error_body() {
    let h = Harness::build(2, 2, ReplicaConfig::default());
    let users = h.straddling_batch();
    let flaky = h.flaky.clone();
    let server = HttpServer::bind(
        Frontend::Router(Arc::new(h.replicated)),
        None,
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();

    flaky[1][0].fail_next(1);
    flaky[1][1].fail_next(1);
    let ids: Vec<String> = users.iter().map(|u| u.0.to_string()).collect();
    let body = format!("{{\"users\":[{}]}}", ids.join(","));
    let mut client = HttpClient::new(server.local_addr().to_string());
    let resp = client
        .request("POST", "/v1/recommend:batch", Some(&body))
        .unwrap();
    assert_eq!(resp.status, 502);
    let v: tinyjson::Value = tinyjson::from_str(&String::from_utf8(resp.body).unwrap()).unwrap();
    assert_eq!(
        v["band"].as_u64(),
        Some(1),
        "band field must survive replication"
    );
    assert!(v["error"].as_str().is_some());

    // Healed over the same connection.
    let healed = client
        .request("POST", "/v1/recommend:batch", Some(&body))
        .unwrap();
    assert_eq!(healed.status, 200);
}

/// A hot-swap landing mid-hedge must never mix generations inside one
/// batch: the sub-batch is whoever answered, whole — so the batch carries
/// exactly one replica's generation and the reference's list bytes.
#[test]
fn mid_hedge_hot_swap_never_mixes_generations() {
    let h = Harness::build(1, 2, hedge_now());
    let users = h.straddling_batch();
    let (ref_slots, ref_gen) = h.reference.recommend_batch_traced(&users).unwrap();
    assert_eq!(ref_gen, 0);

    // Park the primary and swap the hedge replica's bundle (same content,
    // new generation) — the "refit raced the hedge" scenario.
    h.gates[0][0].close();
    assert_eq!(h.engines[0][1].swap_bundle(h.slices[0].clone()), 1);
    let (slots, generation) = h
        .replicated
        .recommend_batch_traced(&users)
        .expect("hedge answers");
    assert_eq!(slots, ref_slots, "content is generation-independent");
    assert_eq!(
        generation, 1,
        "the whole batch is the hedge replica's answer"
    );

    // Straggler released: now either replica may win the zero-budget
    // race, but the batch must still be exactly ONE replica's answer —
    // generation 0 or 1, never a mix (a mix is unrepresentable: the
    // sub-batch is one transport call).
    h.open_all();
    let (slots, generation) = h
        .replicated
        .recommend_batch_traced(&users)
        .expect("both replicas live");
    assert_eq!(slots, ref_slots);
    assert!(
        generation == 0 || generation == 1,
        "batch generation must be one replica's: {generation}"
    );
}

/// Replication does not weaken the cross-band skew check: when band 1's
/// replicas are all on a newer generation than band 0, a straddling batch
/// is refused with the identical hard error under both strategies.
#[test]
fn cross_band_generation_skew_is_still_detected() {
    let h = Harness::build(2, 2, ReplicaConfig::default());
    let users = h.straddling_batch();
    h.engines[1][0].swap_bundle(h.slices[1].clone());
    h.engines[1][1].swap_bundle(h.slices[1].clone());

    let sequential = h.replicated.recommend_batch_traced_sequential(&users);
    let parallel = h.replicated.recommend_batch_traced(&users);
    assert!(
        matches!(&parallel, Err(BackendError::Transport(msg)) if msg.contains("generation skew")),
        "skew must be a hard error: {parallel:?}"
    );
    assert_equivalent(sequential, parallel, "skewed replicated deployment");
}

/// The hedge budget reads the *injected* clock: with the clock frozen the
/// hedge provably cannot fire no matter how long the primary is parked;
/// one manual advance across the deadline fires it. No wall sleeps.
#[test]
fn hedge_budget_gates_on_the_injected_clock() {
    let cfg = ReplicaConfig {
        hedge_budget: Some(Duration::from_millis(10)),
        ..ReplicaConfig::default()
    };
    let h = Harness::build(1, 2, cfg);
    let users = h.straddling_batch();
    let expected = h.reference.recommend_batch_traced(&users);
    h.gates[0][0].close();

    std::thread::scope(|scope| {
        let router = &h.replicated;
        let dispatch = scope.spawn(move || router.recommend_batch_traced(&users));
        // The primary is parked at the gate; the coordinator is waiting on
        // a frozen clock, so the 10ms budget can never elapse.
        h.gates[0][0].wait_arrivals(1);
        assert_eq!(h.sets[0].stats().hedges, 0, "no hedge before the deadline");
        h.clock.advance(Duration::from_millis(10));
        let parallel = dispatch.join().expect("dispatch thread");
        assert_equivalent(expected, parallel, "clock-driven hedge");
    });
    assert_eq!(h.sets[0].stats().hedges, 1, "exactly one hedge fired");
    h.open_all();
}

/// A WAL-backed sharded replica behind a [`FlakyPeer`], for the
/// exactly-once ingest regressions.
fn durable_replica(tag: &str) -> (Arc<ShardedEngine>, Arc<FlakyPeer>, std::path::PathBuf) {
    let engine = Arc::new(ShardedEngine::new(
        fixture_bundle().clone(),
        ShardConfig::quantile(2),
    ));
    let path = std::env::temp_dir().join(format!(
        "ganc_router_replicas_{tag}_{}.bin",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    engine.attach_durable(DurableConfig::new(&path)).unwrap();
    let flaky =
        FlakyPeer::new(Arc::new(Frontend::Sharded(Arc::clone(&engine))) as Arc<dyn PeerTransport>);
    (engine, flaky, path)
}

/// The keyed ingest fan-out is exactly-once against WAL-backed replicas
/// under both ingest fault classes:
///
/// * a **lost request** (replica errors before its engine sees the write)
///   is healed by the in-call retry;
/// * a **lost ack** (replica applies, then the ack is dropped) makes the
///   retry come back `Deduplicated` from the WAL's key window instead of
///   double-applying;
///
/// and a caller-level resend of the whole storm under the same keys is a
/// no-op. Each replica's WAL ends up holding each interaction exactly
/// once.
#[test]
fn flaky_replica_keyed_ingest_fan_out_is_exactly_once() {
    let (e0, f0, p0) = durable_replica("lost_req");
    let (e1, f1, p1) = durable_replica("lost_ack");
    let set = ReplicaSet::new(
        vec![
            Arc::clone(&f0) as Arc<dyn PeerTransport>,
            Arc::clone(&f1) as Arc<dyn PeerTransport>,
        ],
        ReplicaConfig::default(),
    );

    // Lost request on replica 0: the first attempt fails before the
    // engine sees it; the in-call retry delivers it.
    f0.fail_ingests(1);
    set.ingest_keyed(Some("storm-0"), UserId(0), ItemId(1), 5.0)
        .unwrap();

    // Lost ack on replica 1: the engine applies, the ack is dropped, and
    // the retry hits the idempotency window — not the model twice.
    f1.fail_ingest_acks(1);
    set.ingest_keyed(Some("storm-1"), UserId(1), ItemId(2), 4.0)
        .unwrap();

    // A caller resending the acknowledged storm (same keys) is a no-op.
    set.ingest_keyed(Some("storm-0"), UserId(0), ItemId(1), 5.0)
        .unwrap();
    set.ingest_keyed(Some("storm-1"), UserId(1), ItemId(2), 4.0)
        .unwrap();

    for (r, e) in [&e0, &e1].into_iter().enumerate() {
        let w = e.wal_stats().expect("durable replica");
        assert_eq!(
            w.records, 2,
            "replica {r} must hold each interaction exactly once: {w:?}"
        );
        assert_eq!(e.pending_ingests(), 2, "replica {r} pending for refit");
    }
    // Replica 0 absorbed the two resends; replica 1 additionally absorbed
    // the retry after its lost ack.
    assert_eq!(e0.wal_stats().unwrap().dedup_hits, 2);
    assert_eq!(e1.wal_stats().unwrap().dedup_hits, 3);
    let _ = std::fs::remove_file(p0);
    let _ = std::fs::remove_file(p1);
}

/// Hedged dispatch composes with [`CoalescedShard`]-wrapped replicas: a
/// primary parked *inside its coalescer* is hedged around byte-identically
/// to a plain single-backend oracle, a keyed ingest travels to every
/// replica as **one** `ingest_batch` wire call carrying the key (never a
/// single-ingest call), and the read path still matches afterwards.
#[test]
fn coalesced_replicas_hedge_byte_identically_under_a_parked_primary() {
    let bundle = fixture_bundle();
    let oracle_engine = Arc::new(ServingEngine::new(bundle.clone(), EngineConfig::default()));
    let oracle = Frontend::Single(Arc::clone(&oracle_engine));

    let mut peers: Vec<Arc<dyn PeerTransport>> = Vec::new();
    let mut gates = Vec::new();
    let mut recorders = Vec::new();
    let mut engines = Vec::new();
    for _ in 0..2 {
        let engine = Arc::new(ServingEngine::new(bundle.clone(), EngineConfig::default()));
        let gate = GatedPeer::new(
            Arc::new(Frontend::Single(Arc::clone(&engine))) as Arc<dyn PeerTransport>
        );
        gate.open();
        let recorder = RecordingPeer::new(Arc::clone(&gate) as Arc<dyn PeerTransport>);
        peers.push(Arc::new(CoalescedShard::new(
            Arc::clone(&recorder) as Arc<dyn PeerTransport>,
            BatchConfig::default(),
        )));
        gates.push(gate);
        recorders.push(recorder);
        engines.push(engine);
    }
    let set = ReplicaSet::new(peers, hedge_now());

    let mut users: Vec<UserId> = (0..bundle.n_users()).rev().map(UserId).collect();
    users.extend((0..10).map(UserId));
    let expected = oracle.recommend_batch_traced(&users).unwrap();

    // Park the primary inside its coalescer: the zero-budget hedge must
    // answer from the other coalesced replica, byte-identically.
    gates[0].close();
    let hedged = set.recommend_batch_traced(&users).expect("hedge answers");
    assert_eq!(hedged, expected, "coalesced hedge diverges from the oracle");
    let stats = set.stats();
    assert!(
        stats.hedges >= 1,
        "the parked primary forced a hedge: {stats:?}"
    );
    assert_eq!(stats.failovers, 0, "a parked coalescer is not a failure");
    gates[0].open();

    // A keyed ingest through the coalescers reaches every replica exactly
    // once, as a batched wire call that carries the idempotency key.
    set.ingest_keyed(Some("coalesced-0"), UserId(0), ItemId(1), 5.0)
        .unwrap();
    oracle_engine.ingest(UserId(0), ItemId(1), 5.0).unwrap();
    for (r, engine) in engines.iter().enumerate() {
        assert_eq!(engine.stats().ingested, 1, "replica {r} missed the ingest");
    }
    for (r, recorder) in recorders.iter().enumerate() {
        let batches = recorder.ingest_batches();
        assert_eq!(batches.len(), 1, "replica {r}: exactly one wire batch");
        assert_eq!(batches[0].len(), 1, "replica {r}");
        assert_eq!(
            batches[0][0].key.as_deref(),
            Some("coalesced-0"),
            "replica {r}: the key must survive coalescing"
        );
        assert_eq!(
            recorder.ingest_singles(),
            0,
            "replica {r}: coalesced ingest must not use the single-ingest call"
        );
    }

    // The hedged+coalesced read path still matches after the ingest.
    let after = oracle.recommend_batch_traced(&users).unwrap();
    let replicated = set.recommend_batch_traced(&users).expect("both live");
    assert_eq!(replicated, after, "post-ingest read path diverges");
}

/// Ingest fans to **every** replica of every band (healthy or not), so no
/// replica serves stale popularity after a restore.
#[test]
fn ingest_reaches_every_replica_of_every_band() {
    let h = Harness::build(2, 2, ReplicaConfig::default());
    let user = UserId(0);
    let item = ItemId(1);
    h.replicated.ingest(user, item, 5.0).unwrap();
    for (j, band) in h.engines.iter().enumerate() {
        for (r, engine) in band.iter().enumerate() {
            assert_eq!(
                engine.stats().ingested,
                1,
                "band {j} replica {r} missed the ingest"
            );
        }
    }
}
