//! Artifact format compatibility: the v2 envelope round-trips, and genuine
//! format-v1 artifacts (dense snapshot encoding, written by the
//! [`ganc::serve::legacy`] downgrade path) load through the legacy read
//! path and serve byte-identical lists.

use ganc::core::coverage::{CoverageKind, CoverageSnapshots, DynCoverage};
use ganc::dataset::synth::DatasetProfile;
use ganc::dataset::{Interactions, ItemId, UserId};
use ganc::preference::generalized::GeneralizedConfig;
use ganc::recommender::pop::MostPopular;
use ganc::serve::legacy::{bundle_to_v1_bytes, snapshots_to_v1_payload, v1_envelope};
use ganc::serve::{
    EngineConfig, FitConfig, FittedModel, ModelBundle, SaveLoad, ServingEngine, FORMAT_VERSION,
    MIN_FORMAT_VERSION,
};

fn fixture() -> (Interactions, Vec<f64>) {
    let data = DatasetProfile::small().generate(64);
    let split = data.split_per_user(0.5, 6).unwrap();
    let theta = GeneralizedConfig::default().estimate(&split.train);
    (split.train, theta)
}

fn fit(train: &Interactions, theta: &[f64], kind: CoverageKind) -> ModelBundle {
    let cfg = FitConfig {
        coverage: kind,
        sample_size: 20,
        ..FitConfig::new(5)
    };
    ModelBundle::fit(
        FittedModel::Pop(MostPopular::fit(train)),
        theta.to_vec(),
        train.clone(),
        &cfg,
    )
}

#[test]
fn v2_bundles_round_trip_for_every_coverage_kind() {
    let (train, theta) = fixture();
    for kind in [
        CoverageKind::Random,
        CoverageKind::Static,
        CoverageKind::Dynamic,
    ] {
        let bundle = fit(&train, &theta, kind);
        let bytes = bundle.to_bytes().unwrap();
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), FORMAT_VERSION);
        let restored = ModelBundle::from_bytes(&bytes).unwrap();
        assert_eq!(restored, bundle, "{kind:?}");
    }
}

#[test]
fn v1_bundle_fixture_loads_and_serves_identically() {
    let (train, theta) = fixture();
    for kind in [
        CoverageKind::Random,
        CoverageKind::Static,
        CoverageKind::Dynamic,
    ] {
        let bundle = fit(&train, &theta, kind);
        let v1 = bundle_to_v1_bytes(&bundle).unwrap();
        assert_eq!(
            u16::from_le_bytes([v1[4], v1[5]]),
            MIN_FORMAT_VERSION,
            "fixture must be a genuine v1 artifact"
        );
        if let ganc::serve::CoverageState::Dynamic(snaps) = &bundle.coverage {
            let dense = snapshots_to_v1_payload(snaps).unwrap().len();
            let delta = snaps.to_bytes().unwrap().len();
            assert!(
                dense > 5 * delta,
                "{kind:?}: dense snapshot encoding ({dense}) should be ≥5× the delta one ({delta})"
            );
        }

        let restored = ModelBundle::from_bytes(&v1).unwrap();
        let native = ServingEngine::new(bundle, EngineConfig::default());
        let legacy = ServingEngine::new(restored, EngineConfig::default());
        for u in 0..train.n_users() {
            assert_eq!(
                native.recommend(UserId(u)).unwrap(),
                legacy.recommend(UserId(u)).unwrap(),
                "{kind:?}: user {u} diverges after the v1 round-trip"
            );
        }
    }
}

#[test]
fn v1_snapshot_payload_converts_to_delta_form() {
    let mut snaps = CoverageSnapshots::for_items(12);
    let mut cov = DynCoverage::new(12);
    for k in 0..40u32 {
        let list = [ItemId(k % 12), ItemId((k * 5 + 1) % 12)];
        cov.observe(&list);
        snaps.push_assigned(k as f64 / 40.0, &list);
    }
    let v1_bytes = v1_envelope(&snapshots_to_v1_payload(&snaps).unwrap());
    let restored = CoverageSnapshots::from_bytes(&v1_bytes).unwrap();
    assert_eq!(restored.thetas(), snaps.thetas());
    let mut a = vec![0.0; 12];
    let mut b = vec![0.0; 12];
    for q in 0..=10 {
        let t = q as f64 / 10.0;
        assert_eq!(restored.counts_near(t), snaps.counts_near(t));
        restored.scores_near(t, &mut a);
        snaps.scores_near(t, &mut b);
        assert_eq!(a, b, "θ={t}");
    }
}

#[test]
fn unsupported_versions_still_rejected() {
    let (train, theta) = fixture();
    let bundle = fit(&train, &theta, CoverageKind::Static);
    let mut bytes = bundle.to_bytes().unwrap();
    bytes[4] = (FORMAT_VERSION + 1) as u8;
    bytes[5] = 0;
    assert!(ModelBundle::from_bytes(&bytes).is_err());
    bytes[4] = 0;
    assert!(ModelBundle::from_bytes(&bytes).is_err());
}
