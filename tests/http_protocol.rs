//! Protocol robustness fuzz: the server must survive arbitrary bytes on
//! the wire — torn heads, oversized bodies, bad JSON, pipelined junk —
//! without ever panicking, always answering with a JSON error body on one
//! of the contract statuses (400/404/413), and keeping its connection
//! state machine consistent: framing violations close the connection,
//! semantically bad requests keep it, and the server stays fully
//! serviceable for the next connection either way.

use ganc::core::coverage::CoverageKind;
use ganc::dataset::synth::DatasetProfile;
use ganc::http::http1;
use ganc::http::{Frontend, HttpClient, HttpServer, ServerConfig};
use ganc::preference::generalized::GeneralizedConfig;
use ganc::recommender::pop::MostPopular;
use ganc::serve::{EngineConfig, FitConfig, FittedModel, ModelBundle, ServingEngine};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Statuses the fuzz contract allows (200 for bytes that happen to form a
/// valid request, plus the three error codes the API answers junk with).
const ALLOWED: [u16; 4] = [200, 400, 404, 413];

fn bundle() -> ModelBundle {
    static BUNDLE: OnceLock<ModelBundle> = OnceLock::new();
    BUNDLE
        .get_or_init(|| {
            let data = DatasetProfile::tiny().generate(31);
            let split = data.split_per_user(0.5, 2).unwrap();
            let theta = GeneralizedConfig::default().estimate(&split.train);
            let pop = MostPopular::fit(&split.train);
            let cfg = FitConfig {
                coverage: CoverageKind::Dynamic,
                sample_size: 10,
                ..FitConfig::new(5)
            };
            ModelBundle::fit(FittedModel::Pop(pop), theta, split.train, &cfg)
        })
        .clone()
}

fn spawn_server() -> HttpServer {
    let engine = Arc::new(ServingEngine::new(bundle(), EngineConfig::default()));
    let cfg = ServerConfig {
        // Short read timeout: junk that never completes a request must not
        // pin a worker (or this test) for long.
        read_timeout: Duration::from_millis(300),
        limits: ganc::http::Limits {
            max_head_bytes: 2048,
            max_body_bytes: 4096,
        },
        ..ServerConfig::default()
    };
    HttpServer::bind(Frontend::Single(engine), None, cfg, "127.0.0.1:0").unwrap()
}

/// Write raw bytes on a fresh connection, half-close, and collect whatever
/// the server answers (possibly several pipelined responses).
fn exchange(server: &HttpServer, bytes: &[u8]) -> Vec<u8> {
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    (&stream).write_all(bytes).unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut out = Vec::new();
    let _ = (&stream).read_to_end(&mut out);
    out
}

/// Parse every response on a wire capture, asserting each obeys the error
/// contract: allowed status, JSON body, `"error"` key on non-200.
fn check_responses(wire: &[u8], context: &str) -> Vec<u16> {
    let mut reader = BufReader::new(wire);
    let mut statuses = Vec::new();
    loop {
        // Peek through the buffer: stop at end of capture.
        if reader.fill_buf().map(|b| b.is_empty()).unwrap_or(true) {
            break;
        }
        match http1::read_response(&mut reader) {
            Ok(resp) => {
                assert!(
                    ALLOWED.contains(&resp.status),
                    "{context}: status {} outside the 200/400/404/413 contract",
                    resp.status
                );
                let text = std::str::from_utf8(&resp.body)
                    .unwrap_or_else(|_| panic!("{context}: non-UTF-8 body"));
                let v = tinyjson::from_str(text)
                    .unwrap_or_else(|e| panic!("{context}: body is not JSON ({e}): {text:?}"));
                if resp.status != 200 {
                    assert!(
                        v["error"].as_str().is_some(),
                        "{context}: error response without an \"error\" key: {text}"
                    );
                }
                statuses.push(resp.status);
                if !resp.keep_alive {
                    break;
                }
            }
            Err(_) => break, // ran off the end of the capture
        }
    }
    statuses
}

/// The server is still fully serviceable: a fresh connection gets a good
/// answer.
fn assert_alive(server: &HttpServer, context: &str) {
    let mut client = HttpClient::new(server.local_addr().to_string());
    let resp = client
        .request("GET", "/v1/healthz", None)
        .unwrap_or_else(|e| panic!("{context}: server unreachable after fuzz case: {e}"));
    assert_eq!(resp.status, 200, "{context}");
    assert_eq!(resp.body, b"{\"ok\":true,\"generation\":0}", "{context}");
}

proptest! {
    /// Completely random bytes: never a panic, never a non-contract status,
    /// server alive afterwards.
    #[test]
    fn random_bytes_never_wedge_the_server(
        bytes in collection::vec((0u32..256).prop_map(|b| b as u8), 0..300),
    ) {
        static SERVER: OnceLock<HttpServer> = OnceLock::new();
        let server = SERVER.get_or_init(spawn_server);
        let wire = exchange(server, &bytes);
        check_responses(&wire, "random bytes");
        assert_alive(server, "random bytes");
    }

    /// Structured junk: a method-shaped token, a path, torn or valid
    /// headers, and a body that is JSON-shaped garbage. Same contract.
    #[test]
    fn structured_junk_answers_the_contract(
        verb in (0usize..6),
        path_pick in (0usize..6),
        body_pick in (0usize..6),
        torn in (0u32..2).prop_map(|t| t == 1),
    ) {
        static SERVER: OnceLock<HttpServer> = OnceLock::new();
        let server = SERVER.get_or_init(spawn_server);
        let verb = ["GET", "POST", "PUT", "DELETE", "G@T", ""][verb];
        let path = [
            "/v1/recommend/0",
            "/v1/recommend/notanumber",
            "/v1/recommend/0?n=abc",
            "/v1/ingest",
            "/nope",
            "v1/healthz", // not absolute
        ][path_pick];
        let body = [
            "",
            "{",
            "{\"users\":}",
            "{\"users\":[1,2,",
            "{\"user\":true}",
            "[\"not\",\"an\",\"object\"]",
        ][body_pick];
        let mut request = format!("{verb} {path} HTTP/1.1\r\n");
        if !body.is_empty() {
            request.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        if torn {
            // Cut the head mid-header: the server must treat it as fatal.
            request.push_str("X-Torn: yes");
        } else {
            request.push_str("\r\n");
            request.push_str(body);
        }
        let wire = exchange(server, request.as_bytes());
        check_responses(&wire, "structured junk");
        assert_alive(server, "structured junk");
    }
}

/// Torn head: bytes stop mid-request-line. Fatal 400, then close.
#[test]
fn torn_head_gets_400_and_close() {
    let server = spawn_server();
    let wire = exchange(&server, b"GET /v1/reco");
    let statuses = check_responses(&wire, "torn head");
    assert_eq!(statuses, vec![400]);
}

/// Declared body larger than the limit: 413 with a JSON error, then close
/// (the unread body makes the stream unrecoverable).
#[test]
fn oversized_body_gets_413_and_close() {
    let server = spawn_server();
    let wire = exchange(
        &server,
        b"POST /v1/ingest HTTP/1.1\r\nContent-Length: 999999\r\n\r\n",
    );
    let statuses = check_responses(&wire, "oversized body");
    assert_eq!(statuses, vec![413]);
    assert_alive(&server, "oversized body");
}

/// Well-framed but semantically bad requests keep the connection: bad
/// JSON answers 400, an unknown route answers 404, and the *same*
/// connection then serves a good request — the recoverable half of the
/// state machine.
#[test]
fn bad_json_and_unknown_routes_keep_the_connection() {
    let server = spawn_server();
    let mut client = HttpClient::new(server.local_addr().to_string());

    let resp = client
        .request("POST", "/v1/recommend:batch", Some("{\"users\":[oops"))
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.keep_alive, "bad JSON must not cost the connection");

    let resp = client.request("GET", "/v1/unknown", None).unwrap();
    assert_eq!(resp.status, 404);
    assert!(resp.keep_alive);

    let resp = client.request("GET", "/v1/recommend/0", None).unwrap();
    assert_eq!(
        resp.status, 200,
        "connection must still serve good requests"
    );

    // Unknown ids: 404 with the machine-readable field, connection kept.
    let resp = client.request("GET", "/v1/recommend/999999", None).unwrap();
    assert_eq!(resp.status, 404);
    let v = tinyjson::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    assert_eq!(v["unknown_user"].as_u64(), Some(999_999));
    let resp = client.request("GET", "/v1/recommend/0", None).unwrap();
    assert_eq!(resp.status, 200);
}

/// Malformed per-request override parameters — `theta` out of range or
/// non-numeric, `exclude` with junk entries, `rerank` naming an unknown
/// mode — answer 400 with a JSON error body and keep the connection, the
/// same recoverable contract as any other semantically bad request. The
/// pre-existing unknown-parameter 400 survives the new parameters.
#[test]
fn malformed_override_params_get_400_and_keep_the_connection() {
    let server = spawn_server();
    let mut client = HttpClient::new(server.local_addr().to_string());

    for (path, why) in [
        ("/v1/recommend/0?theta=abc", "non-numeric theta"),
        ("/v1/recommend/0?theta=1.5", "theta above 1"),
        ("/v1/recommend/0?theta=-0.1", "theta below 0"),
        ("/v1/recommend/0?theta=NaN", "non-finite theta"),
        ("/v1/recommend/0?exclude=1,x,3", "junk exclude entry"),
        ("/v1/recommend/0?exclude=-1", "negative exclude id"),
        ("/v1/recommend/0?rerank=bogus", "unknown rerank mode"),
        ("/v1/recommend/0?rerank=", "empty rerank mode"),
        ("/v1/recommend/0?boost=2", "unknown parameter"),
    ] {
        let resp = client.request("GET", path, None).unwrap();
        assert_eq!(resp.status, 400, "{why}: {path}");
        let v = tinyjson::from_str(std::str::from_utf8(&resp.body).unwrap())
            .unwrap_or_else(|e| panic!("{why}: body is not JSON ({e})"));
        assert!(
            v["error"].as_str().is_some(),
            "{why}: 400 without an \"error\" key"
        );
        assert!(resp.keep_alive, "{why} must not cost the connection");
    }

    // Same contract for the batch body fields.
    for (body, why) in [
        (
            "{\"users\":[0],\"theta\":\"abc\"}",
            "non-numeric batch theta",
        ),
        ("{\"users\":[0],\"theta\":2.0}", "out-of-range batch theta"),
        (
            "{\"users\":[0],\"exclude\":[1,\"x\"]}",
            "junk batch exclude",
        ),
        ("{\"users\":[0],\"exclude\":7}", "non-array batch exclude"),
        (
            "{\"users\":[0],\"rerank\":\"bogus\"}",
            "unknown batch rerank",
        ),
    ] {
        let resp = client
            .request("POST", "/v1/recommend:batch", Some(body))
            .unwrap();
        assert_eq!(resp.status, 400, "{why}: {body}");
        let v = tinyjson::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert!(v["error"].as_str().is_some(), "{why}");
        assert!(resp.keep_alive, "{why} must not cost the connection");
    }

    // The same connection still serves a good overridden request.
    let resp = client
        .request(
            "GET",
            "/v1/recommend/0?theta=0.5&exclude=1,2&rerank=pra",
            None,
        )
        .unwrap();
    assert_eq!(resp.status, 200, "valid overrides after the refusals");
    assert_alive(&server, "malformed overrides");
}

/// `n=0` is a valid request for an empty list: 200 with `"items":[]`,
/// not an error — pinned so truncation never turns into a refusal.
#[test]
fn n_zero_answers_an_empty_list_200() {
    let server = spawn_server();
    let mut client = HttpClient::new(server.local_addr().to_string());
    let resp = client.request("GET", "/v1/recommend/0?n=0", None).unwrap();
    assert_eq!(resp.status, 200);
    let v = tinyjson::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    assert_eq!(v["items"].as_array().map(Vec::len), Some(0));
    assert_eq!(v["user"].as_u64(), Some(0));
    // The empty list is a truncation, not a failure: the same connection
    // immediately serves the full list.
    let resp = client.request("GET", "/v1/recommend/0", None).unwrap();
    assert_eq!(resp.status, 200);
    let v = tinyjson::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    assert!(v["items"].as_array().map(Vec::len).unwrap_or(0) > 0);
}

/// Idempotency keys that could smuggle headers (CR/LF via the JSON body
/// `"key"` field — a real header can't carry them) or that the WAL replay
/// decoder would refuse (oversized) must be 400'd at ingress, never
/// acknowledged, and must not cost the connection.
#[test]
fn malformed_idempotency_keys_get_400_at_ingress() {
    let server = spawn_server();
    let mut client = HttpClient::new(server.local_addr().to_string());

    let smuggle = "{\"user\":0,\"item\":0,\"rating\":4.0,\
                   \"key\":\"evil\\r\\nX-Smuggled: 1\"}";
    let long = format!(
        "{{\"user\":0,\"item\":0,\"rating\":4.0,\"key\":\"{}\"}}",
        "x".repeat(200)
    );
    let spaced = "{\"user\":0,\"item\":0,\"rating\":4.0,\"key\":\"has space\"}";
    for body in [smuggle, &long, spaced] {
        let resp = client.request("POST", "/v1/ingest", Some(body)).unwrap();
        assert_eq!(resp.status, 400, "{body}");
        let v = tinyjson::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert!(v["error"].as_str().is_some());
        assert!(
            resp.keep_alive,
            "a refused key must not cost the connection"
        );
    }

    // Same contract on the batch endpoint: one bad entry fails the parse.
    let batch = format!(
        "{{\"entries\":[{{\"user\":0,\"item\":0,\"rating\":4.0,\"key\":\"ok-1\"}},{smuggle}]}}"
    );
    let resp = client
        .request("POST", "/v1/ingest:batch", Some(&batch))
        .unwrap();
    assert_eq!(resp.status, 400, "batch with an injection key");

    // A well-formed key on the same connection still works.
    let resp = client
        .request(
            "POST",
            "/v1/ingest",
            Some("{\"user\":0,\"item\":0,\"rating\":4.0,\"key\":\"good-key-1\"}"),
        )
        .unwrap();
    assert_eq!(resp.status, 200);
    assert_alive(&server, "malformed keys");
}

/// Pipelined requests: a valid request followed by garbage. The valid one
/// is answered 200, the garbage gets its fatal 400, then the connection
/// closes — responses in order, no interleaving.
#[test]
fn pipelined_junk_answers_in_order_then_closes() {
    let server = spawn_server();
    let wire = exchange(
        &server,
        b"GET /v1/healthz HTTP/1.1\r\n\r\nNONSENSE BYTES HERE\r\n\r\n",
    );
    let statuses = check_responses(&wire, "pipelined junk");
    assert_eq!(statuses, vec![200, 400]);
}

/// Pipelined *valid* requests all answer in order on one connection.
#[test]
fn pipelined_valid_requests_all_answer() {
    let server = spawn_server();
    let wire = exchange(
        &server,
        b"GET /v1/healthz HTTP/1.1\r\n\r\nGET /v1/recommend/0 HTTP/1.1\r\n\r\nGET /v1/stats HTTP/1.1\r\n\r\n",
    );
    let statuses = check_responses(&wire, "pipelined valid");
    assert_eq!(statuses, vec![200, 200, 200]);
}

/// The router batch error contract: a failed θ-band answers 502 with a
/// JSON body whose `band` field names the failed band — not a bare
/// positional error — while per-user rejections stay in-slot 200s.
#[test]
fn failed_band_carries_its_index_in_the_error_body() {
    use ganc::core::query::cut_theta_bands;
    use ganc::http::testing::FlakyPeer;
    use ganc::http::{PeerTransport, RouterNode, ShardRoute};

    let b = bundle();
    let cuts = cut_theta_bands(&b.theta, 2);
    let slice0 = b.slice_theta_band(f64::NEG_INFINITY, cuts[0]);
    let slice1 = b.slice_theta_band(cuts[0], f64::INFINITY);
    let local = Arc::new(ServingEngine::new(slice0, EngineConfig::default()));
    let remote_engine = Arc::new(ServingEngine::new(slice1, EngineConfig::default()));
    let flaky = FlakyPeer::new(Arc::new(Frontend::Single(remote_engine)) as Arc<dyn PeerTransport>);
    let router = RouterNode::new(
        Arc::clone(&b.theta),
        cuts,
        vec![
            ShardRoute::Local(local),
            ShardRoute::Remote(Arc::clone(&flaky) as Arc<dyn PeerTransport>),
        ],
    );
    let server = HttpServer::bind(
        Frontend::Router(Arc::new(router)),
        None,
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    let mut client = HttpClient::new(server.local_addr().to_string());
    let ids: Vec<String> = (0..b.n_users()).map(|u| u.to_string()).collect();
    let body = format!("{{\"users\":[{}]}}", ids.join(","));

    // Healthy: a straddling batch answers 200 (unknown users would still
    // be in-slot, not whole-batch).
    let resp = client
        .request_idempotent("POST", "/v1/recommend:batch", Some(&body))
        .unwrap();
    assert_eq!(resp.status, 200);

    // Band 1 down: whole-batch 502 whose body is machine-attributable.
    flaky.fail_next(1);
    let resp = client
        .request_idempotent("POST", "/v1/recommend:batch", Some(&body))
        .unwrap();
    assert_eq!(resp.status, 502);
    let v = tinyjson::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    assert_eq!(
        v["band"].as_u64(),
        Some(1),
        "error body must name the failed band: {v:?}"
    );
    let msg = v["error"].as_str().unwrap();
    assert!(
        msg.starts_with("band 1:") && msg.contains("injected failure"),
        "error prose names band and cause: {msg}"
    );

    // Healed: the same connection serves the batch again.
    let resp = client
        .request_idempotent("POST", "/v1/recommend:batch", Some(&body))
        .unwrap();
    assert_eq!(resp.status, 200);
}

/// `/v1/healthz` degrades honestly: after the breaker ejects a replica the
/// body flips to `degraded: true` with the band index listed (while `ok`
/// stays true — the band still answers via failover), `/v1/stats` shows
/// the reduced replica count, and a probe pass restores both the replica
/// and the healthy healthz body.
#[test]
fn healthz_reports_degraded_bands_until_a_probe_restores() {
    use ganc::core::query::cut_theta_bands;
    use ganc::http::testing::FlakyPeer;
    use ganc::http::{PeerTransport, ReplicaConfig, ReplicaSet, RouterNode, ShardRoute};
    use ganc::obs::{Clock, ManualClock};

    let b = bundle();
    let cuts = cut_theta_bands(&b.theta, 2);
    let slice0 = b.slice_theta_band(f64::NEG_INFINITY, cuts[0]);
    let slice1 = b.slice_theta_band(cuts[0], f64::INFINITY);
    let local = Arc::new(ServingEngine::new(slice0, EngineConfig::default()));
    // Band 1: two replicas behind a threshold-1 breaker on a frozen clock,
    // so the server-spawned probe loop stays idle and the test drives
    // recovery by hand through its own handle to the set.
    let mut peers: Vec<Arc<dyn PeerTransport>> = Vec::new();
    let mut flaky = Vec::new();
    for _ in 0..2 {
        let engine = Arc::new(ServingEngine::new(slice1.clone(), EngineConfig::default()));
        let f = FlakyPeer::new(Arc::new(Frontend::Single(engine)) as Arc<dyn PeerTransport>);
        peers.push(Arc::clone(&f) as Arc<dyn PeerTransport>);
        flaky.push(f);
    }
    let set = ReplicaSet::with_clock(
        peers,
        ReplicaConfig {
            failure_threshold: 1,
            ..ReplicaConfig::default()
        },
        Arc::new(ManualClock::new()) as Arc<dyn Clock>,
    );
    let router = RouterNode::new(
        Arc::clone(&b.theta),
        cuts,
        vec![
            ShardRoute::Local(local),
            ShardRoute::Replicas(Arc::clone(&set)),
        ],
    );
    let server = HttpServer::bind(
        Frontend::Router(Arc::new(router)),
        None,
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    let mut client = HttpClient::new(server.local_addr().to_string());
    let get = |client: &mut HttpClient, path: &str| {
        let resp = client.request("GET", path, None).unwrap();
        assert_eq!(resp.status, 200, "{path}");
        tinyjson::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap()
    };

    // Fully replicated: healthy healthz, no degraded bands.
    let health: tinyjson::Value = get(&mut client, "/v1/healthz");
    assert_eq!(health["ok"].as_bool(), Some(true));
    assert_eq!(health["degraded"].as_bool(), Some(false));
    assert_eq!(health["degraded_bands"].as_array().map(Vec::len), Some(0));

    // One injected failure ejects band 1's primary (threshold 1); the
    // request itself still answers 200 through failover.
    flaky[0].fail_next(1);
    let ids: Vec<String> = (0..b.n_users()).map(|u| u.to_string()).collect();
    let body = format!("{{\"users\":[{}]}}", ids.join(","));
    let resp = client
        .request_idempotent("POST", "/v1/recommend:batch", Some(&body))
        .unwrap();
    assert_eq!(resp.status, 200, "failover hides the ejection from callers");

    let health: tinyjson::Value = get(&mut client, "/v1/healthz");
    assert_eq!(health["ok"].as_bool(), Some(true), "still serving");
    assert_eq!(health["degraded"].as_bool(), Some(true));
    let bands = health["degraded_bands"].as_array().unwrap();
    assert_eq!(
        bands.iter().filter_map(|v| v.as_u64()).collect::<Vec<_>>(),
        vec![1]
    );

    let stats: tinyjson::Value = get(&mut client, "/v1/stats");
    let shard1 = &stats["shards"].as_array().unwrap()[1];
    assert_eq!(shard1["replicas"]["count"].as_u64(), Some(2));
    assert_eq!(shard1["replicas"]["healthy"].as_u64(), Some(1));
    assert_eq!(shard1["replicas"]["primary"].as_u64(), Some(1));
    assert_eq!(shard1["replicas"]["ejections"].as_u64(), Some(1));

    // A probe pass restores the replica and rotates the primary back.
    assert_eq!(set.probe_once(), 1);
    let health: tinyjson::Value = get(&mut client, "/v1/healthz");
    assert_eq!(health["degraded"].as_bool(), Some(false));
    assert_eq!(health["degraded_bands"].as_array().map(Vec::len), Some(0));
    let stats: tinyjson::Value = get(&mut client, "/v1/stats");
    let shard1 = &stats["shards"].as_array().unwrap()[1];
    assert_eq!(shard1["replicas"]["healthy"].as_u64(), Some(2));
    assert_eq!(shard1["replicas"]["primary"].as_u64(), Some(0));
    assert_eq!(shard1["replicas"]["restores"].as_u64(), Some(1));
}
