//! Per-request trade-off overrides (θ / exclusions / online re-rank): the
//! override path must be **byte-identical** to the unsharded reference
//! engine's fused path at that θ and exclusion set, across band counts
//! {1, 2, 4} × every coverage kind — and an online `rerank=` request must
//! reproduce the batch `rerank_all` driver's list exactly.
//!
//! The named correctness trap is the user-keyed LRU: a cached default
//! list must never answer an override request, and an override's list
//! must never be served to a later default request. Both directions are
//! pinned here via cache-hit counters and list identity.

use ganc::core::coverage::CoverageKind;
use ganc::core::query::shard_of;
use ganc::core::{AccuracyMode, UserOrdering};
use ganc::dataset::dataset::{DatasetBuilder, RatingScale};
use ganc::dataset::synth::DatasetProfile;
use ganc::dataset::{Interactions, ItemId, UserId};
use ganc::http::testing::RecordingPeer;
use ganc::http::{
    Frontend, HttpServer, PeerTransport, RemoteShard, RouterNode, ServerConfig, ShardRoute,
};
use ganc::preference::generalized::GeneralizedConfig;
use ganc::recommender::pop::MostPopular;
use ganc::recommender::rsvd::{Rsvd, RsvdConfig};
use ganc::rerank::rerank_all;
use ganc::serve::{
    build_reranker, EngineConfig, FitConfig, FittedModel, ModelBundle, RequestOptions, RerankMode,
    ServeError, ServingEngine, ShardConfig, ShardedEngine,
};
use proptest::prelude::*;
use std::sync::Arc;

const N_USERS: u32 = 10;
const N_ITEMS: u32 = 22;
const N: usize = 5;
const SEED: u64 = 0x0000_0516;
const BAND_COUNTS: [usize; 3] = [1, 2, 4];
const ALL_KINDS: [CoverageKind; 3] = [
    CoverageKind::Random,
    CoverageKind::Static,
    CoverageKind::Dynamic,
];
const ALL_MODES: [RerankMode; 3] = [RerankMode::Pra, RerankMode::Rbt, RerankMode::FiveD];

fn arb_train() -> impl Strategy<Value = Interactions> {
    proptest::collection::vec((0u32..N_USERS, 0u32..N_ITEMS, 1u32..=5), 10..120).prop_map(
        |triples| {
            let mut b = DatasetBuilder::new("overrides", RatingScale::stars_1_5());
            for (u, i, r) in triples {
                b.push(UserId(u), ItemId(i), r as f32).unwrap();
            }
            let d = b.build().unwrap();
            Interactions::from_ratings(N_USERS, N_ITEMS, d.ratings())
        },
    )
}

fn arb_theta() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0u32..=8, (N_USERS as usize)..(N_USERS as usize + 1))
        .prop_map(|grid| grid.into_iter().map(|k| k as f64 / 8.0).collect())
}

fn fit_cfg(kind: CoverageKind) -> FitConfig {
    FitConfig {
        n: N,
        coverage: kind,
        accuracy_mode: AccuracyMode::Normalized,
        sample_size: 10,
        ordering: UserOrdering::IncreasingTheta,
        seed: SEED,
    }
}

fn pop_bundle(train: &Interactions, theta: &[f64], kind: CoverageKind) -> ModelBundle {
    ModelBundle::fit(
        FittedModel::Pop(MostPopular::fit(train)),
        theta.to_vec(),
        train.clone(),
        &fit_cfg(kind),
    )
}

/// A realistic skewed fixture (KDE θ over synthetic data) for the
/// deterministic tests.
fn skewed_bundle(kind: CoverageKind) -> ModelBundle {
    let data = DatasetProfile::tiny().generate(73);
    let split = data.split_per_user(0.5, 3).unwrap();
    let theta = GeneralizedConfig::default().estimate(&split.train);
    pop_bundle(&split.train, &theta, kind)
}

proptest! {
    /// The tentpole oracle: for random data, random θ, a random θ
    /// override and exclusion set, the sharded override answer is
    /// byte-identical to the unsharded reference engine at that
    /// θ/exclusions — across band counts {1, 2, 4} and every coverage
    /// kind.
    #[test]
    fn overridden_answers_match_the_unsharded_reference(
        train in arb_train(),
        theta in arb_theta(),
        theta_override in 0u32..=9, // 9 = "no θ override"
        exclude in proptest::collection::vec(0u32..N_ITEMS, 0..6),
    ) {
        for kind in ALL_KINDS {
            let bundle = pop_bundle(&train, &theta, kind);
            let single = ServingEngine::new(bundle.clone(), EngineConfig::default());
            let mut opts = RequestOptions {
                theta: (theta_override < 9).then(|| theta_override as f64 / 8.0),
                ..RequestOptions::default()
            };
            opts.set_exclude(exclude.clone());
            for bands in BAND_COUNTS {
                let sharded = ShardedEngine::new(bundle.clone(), ShardConfig::quantile(bands));
                for u in (0..N_USERS).map(UserId) {
                    let want = single.recommend_with_traced(u, &opts).unwrap();
                    let got = sharded.recommend_with_traced(u, &opts).unwrap();
                    prop_assert_eq!(
                        got.0.as_slice(), want.0.as_slice(),
                        "kind {:?} bands {} user {:?}", kind, bands, u
                    );
                    prop_assert_eq!(got.1, want.1, "generation must match");
                    for &x in &opts.exclude {
                        prop_assert!(
                            !got.0.contains(&ItemId(x)),
                            "excluded item {} served to {:?}", x, u
                        );
                    }
                }
            }
        }
    }
}

/// Overriding θ to exactly the user's fitted θ must reproduce the default
/// list — the override path is the same fused computation, only
/// parameterized. The one carve-out is Dyn coverage's *seed users*: their
/// default list is the sequential phase's verbatim assignment (matching
/// the batch optimizer), while an override always answers from the fused
/// path, so they are exempt here.
#[test]
fn theta_override_at_fitted_value_reproduces_default_list() {
    for kind in ALL_KINDS {
        let bundle = skewed_bundle(kind);
        let engine = ServingEngine::new(bundle.clone(), EngineConfig::default());
        let seeded: std::collections::BTreeSet<u32> =
            bundle.seed_lists.iter().map(|(u, _)| u.0).collect();
        for u in (0..bundle.n_users()).map(UserId) {
            if seeded.contains(&u.0) {
                continue;
            }
            let default = engine.recommend(u).unwrap();
            let opts = RequestOptions {
                theta: Some(bundle.theta[u.idx()]),
                ..RequestOptions::default()
            };
            let (overridden, _) = engine.recommend_with_traced(u, &opts).unwrap();
            assert_eq!(
                overridden.as_slice(),
                default.as_slice(),
                "{kind:?}: θ=fitted must be the default list for {u:?}"
            );
        }
    }
}

/// The LRU trap, both directions: an override is never answered from the
/// cache (the cached default entry survives untouched and still hits),
/// and an override's list never poisons the cache for later default
/// requests.
#[test]
fn override_requests_never_read_or_write_the_cache() {
    let bundle = skewed_bundle(CoverageKind::Dynamic);
    let engine = ServingEngine::new(bundle.clone(), EngineConfig::default());
    let u = UserId(0);

    // Prime the cache with the default list.
    let default = engine.recommend(u).unwrap();
    let s0 = engine.stats();
    assert_eq!((s0.cache_hits, s0.cache_misses), (0, 1));

    // Exclude the default head: the override must recompute (a cached
    // answer would still carry the excluded item) and must not count a
    // cache hit.
    let opts = RequestOptions {
        exclude: vec![default[0].0],
        ..RequestOptions::default()
    };
    let (overridden, _) = engine.recommend_with_traced(u, &opts).unwrap();
    assert!(
        !overridden.contains(&default[0]),
        "override served the cached default list"
    );
    let s1 = engine.stats();
    assert_eq!(s1.cache_hits, 0, "override must not read the cache");
    assert_eq!(s1.cache_misses, 2);

    // The default entry is still cached and unpoisoned: the next default
    // request hits and returns the original list.
    let again = engine.recommend(u).unwrap();
    assert_eq!(again.as_slice(), default.as_slice());
    let s2 = engine.stats();
    assert_eq!(
        (s2.cache_hits, s2.cache_misses),
        (1, 2),
        "default request after an override must hit the untouched cache"
    );

    // Reverse direction: on a fresh engine, an override served first must
    // not seed the cache — the following default request computes fresh
    // and matches the reference default list.
    let fresh = ServingEngine::new(bundle, EngineConfig::default());
    let (first_override, _) = fresh.recommend_with_traced(u, &opts).unwrap();
    let default_after = fresh.recommend(u).unwrap();
    assert_eq!(default_after.as_slice(), default.as_slice());
    assert_ne!(first_override.as_slice(), default_after.as_slice());
    assert_eq!(
        fresh.stats().cache_hits,
        0,
        "override must not seed the cache"
    );
}

/// Online `rerank=` ≡ the batch `rerank_all` driver, for every re-ranker
/// mode × model (Pop and RSVD) — both sides build their re-ranker through
/// the shared `build_reranker`, so any divergence is in the online path.
#[test]
fn online_rerank_matches_batch_rerank_all() {
    let data = DatasetProfile::tiny().generate(73);
    let split = data.split_per_user(0.5, 3).unwrap();
    let train = split.train;
    let theta = GeneralizedConfig::default().estimate(&train);
    let rsvd_cfg = RsvdConfig {
        factors: 8,
        epochs: 4,
        ..RsvdConfig::default()
    };
    let models: Vec<FittedModel> = vec![
        FittedModel::Pop(MostPopular::fit(&train)),
        FittedModel::Rsvd(Rsvd::train(&train, rsvd_cfg)),
    ];
    for model in models {
        let bundle = ModelBundle::fit(
            model,
            theta.clone(),
            train.clone(),
            &fit_cfg(CoverageKind::Dynamic),
        );
        let engine = ServingEngine::new(bundle.clone(), EngineConfig::default());
        for mode in ALL_MODES {
            let rr = build_reranker(mode, &train, &bundle.model_name);
            let batch = match bundle.model.as_ref() {
                FittedModel::Pop(m) => rerank_all(rr.as_ref(), m, &train, N, 2),
                FittedModel::Rsvd(m) => rerank_all(rr.as_ref(), m, &train, N, 2),
                _ => unreachable!("fixture fits only Pop and RSVD"),
            };
            let opts = RequestOptions {
                rerank: Some(mode),
                ..RequestOptions::default()
            };
            for u in (0..train.n_users()).map(UserId) {
                let (online, _) = engine.recommend_with_traced(u, &opts).unwrap();
                assert_eq!(
                    online.as_slice(),
                    batch[u.idx()].as_slice(),
                    "{} × {:?}: online rerank diverges from rerank_all for {u:?}",
                    bundle.model_name,
                    mode,
                );
            }
        }
    }
}

/// The rerank override through a sharded front equals the single-engine
/// online answer (and hence, transitively, the batch driver), for every
/// mode × band count × coverage kind.
#[test]
fn sharded_rerank_matches_single_across_bands_and_kinds() {
    for kind in ALL_KINDS {
        let bundle = skewed_bundle(kind);
        let single = ServingEngine::new(bundle.clone(), EngineConfig::default());
        for mode in ALL_MODES {
            let opts = RequestOptions {
                rerank: Some(mode),
                ..RequestOptions::default()
            };
            for bands in BAND_COUNTS {
                let sharded = ShardedEngine::new(bundle.clone(), ShardConfig::quantile(bands));
                for u in (0..bundle.n_users()).map(UserId) {
                    assert_eq!(
                        sharded.recommend_with_traced(u, &opts).unwrap().0,
                        single.recommend_with_traced(u, &opts).unwrap().0,
                        "{kind:?} × {mode:?} × {bands} bands: {u:?}"
                    );
                }
            }
        }
    }
}

/// Batch overrides equal the per-user single override path slot for slot,
/// and unknown users error in their slot without failing the batch.
#[test]
fn batch_override_matches_singles_and_flags_unknown_users() {
    let bundle = skewed_bundle(CoverageKind::Dynamic);
    let n_users = bundle.n_users();
    let opts = RequestOptions {
        theta: Some(0.75),
        exclude: vec![0, 3],
        ..RequestOptions::default()
    };
    for bands in BAND_COUNTS {
        let engine = ShardedEngine::new(bundle.clone(), ShardConfig::quantile(bands));
        let mut users: Vec<UserId> = (0..n_users).map(UserId).collect();
        users.push(UserId(n_users + 7)); // unknown
        let (answers, generation) = engine.recommend_batch_with_traced(&users, &opts);
        assert_eq!(generation, 0);
        for (k, answer) in answers.iter().enumerate() {
            if users[k].0 < n_users {
                assert_eq!(
                    answer.as_ref().unwrap().as_slice(),
                    engine
                        .recommend_with_traced(users[k], &opts)
                        .unwrap()
                        .0
                        .as_slice(),
                    "bands {bands} slot {k}"
                );
            } else {
                assert_eq!(
                    answer.as_ref().unwrap_err(),
                    &ServeError::UnknownUser(users[k]),
                    "unknown user must error in its slot"
                );
            }
        }
    }
}

/// Build a router over per-band slices, each band wrapped in a
/// [`RecordingPeer`] so dispatch targets are observable.
fn recording_router(
    bundle: &ModelBundle,
    bands: usize,
) -> (RouterNode, Vec<Arc<RecordingPeer>>, Vec<f64>) {
    use ganc::core::query::{band_bounds, cut_theta_bands};
    let cuts = cut_theta_bands(&bundle.theta, bands);
    let mut routes = Vec::new();
    let mut recorders = Vec::new();
    for j in 0..bands {
        let (lo, hi) = band_bounds(&cuts, j);
        let slice = bundle.slice_theta_band(lo, hi);
        let engine = Arc::new(ServingEngine::new(slice, EngineConfig::default()));
        let frontend: Arc<dyn PeerTransport> = Arc::new(Frontend::Single(engine));
        let rec = RecordingPeer::new(frontend);
        routes.push(ShardRoute::Remote(
            Arc::clone(&rec) as Arc<dyn PeerTransport>
        ));
        recorders.push(rec);
    }
    let router = RouterNode::new(Arc::clone(&bundle.theta), cuts.clone(), routes);
    (router, recorders, cuts)
}

/// A θ override through a router lands on the band **owning that θ** (not
/// the user's home band) and the answer is byte-identical to the
/// unsharded reference at that θ.
#[test]
fn router_routes_theta_override_to_owning_band() {
    let bundle = skewed_bundle(CoverageKind::Dynamic);
    let single = ServingEngine::new(bundle.clone(), EngineConfig::default());
    for bands in [2usize, 4] {
        let (router, recorders, cuts) = recording_router(&bundle, bands);
        // Pick a user whose home band differs from the override target.
        let theta_override = 0.97;
        let owner = shard_of(&cuts, theta_override);
        let user = (0..bundle.n_users())
            .map(UserId)
            .find(|u| shard_of(&cuts, bundle.theta[u.idx()]) != owner);
        let Some(user) = user else {
            continue; // degenerate cuts: every user already lives there
        };
        let opts = RequestOptions {
            theta: Some(theta_override),
            ..RequestOptions::default()
        };
        let (got, _) = router.recommend_with_traced(user, &opts).unwrap();
        let (want, _) = single.recommend_with_traced(user, &opts).unwrap();
        assert_eq!(got.as_slice(), want.as_slice(), "bands {bands}");
        for (j, rec) in recorders.iter().enumerate() {
            assert_eq!(
                rec.singles(),
                u64::from(j == owner),
                "bands {bands}: only the owning band {owner} may be dispatched, saw band {j}"
            );
        }
    }
}

/// A θ-overridden **batch** collapses onto the owning band and every slot
/// equals the unsharded reference; an exclusion-only batch splits across
/// home bands as usual and still matches the reference.
#[test]
fn router_batch_overrides_match_reference_and_routing() {
    let bundle = skewed_bundle(CoverageKind::Dynamic);
    let single = ServingEngine::new(bundle.clone(), EngineConfig::default());
    let users: Vec<UserId> = (0..bundle.n_users()).map(UserId).collect();
    for bands in [2usize, 4] {
        // θ override: exactly one band sees exactly one batch.
        let (router, recorders, cuts) = recording_router(&bundle, bands);
        let opts = RequestOptions {
            theta: Some(0.12),
            exclude: vec![1, 2],
            ..RequestOptions::default()
        };
        let owner = shard_of(&cuts, 0.12);
        let (answers, _) = router.recommend_batch_with_traced(&users, &opts).unwrap();
        let (want, _) = single.recommend_batch_with_traced(&users, &opts);
        for (k, (got, want)) in answers.iter().zip(&want).enumerate() {
            assert_eq!(
                got.as_ref().unwrap().as_slice(),
                want.as_ref().unwrap().as_slice(),
                "bands {bands} slot {k}"
            );
        }
        for (j, rec) in recorders.iter().enumerate() {
            assert_eq!(
                rec.batches().len(),
                usize::from(j == owner),
                "θ-overridden batch must collapse onto band {owner}"
            );
        }

        // Exclusion-only override: home-band split, same answers as the
        // reference engine with the same exclusions.
        let (router, recorders, cuts) = recording_router(&bundle, bands);
        let opts = RequestOptions {
            exclude: vec![0, 5, 9],
            ..RequestOptions::default()
        };
        let (answers, _) = router.recommend_batch_with_traced(&users, &opts).unwrap();
        let (want, _) = single.recommend_batch_with_traced(&users, &opts);
        for (got, want) in answers.iter().zip(&want) {
            assert_eq!(
                got.as_ref().unwrap().as_slice(),
                want.as_ref().unwrap().as_slice()
            );
        }
        let touched: Vec<usize> = recorders
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.batches().is_empty())
            .map(|(j, _)| j)
            .collect();
        let homes: std::collections::BTreeSet<usize> = users
            .iter()
            .map(|u| shard_of(&cuts, bundle.theta[u.idx()]))
            .collect();
        assert_eq!(
            touched,
            homes.into_iter().collect::<Vec<_>>(),
            "exclusion-only batch must split across home bands"
        );
    }
}

/// End-to-end over a real socket: `RemoteShard` encodes θ/exclude/rerank
/// onto the wire, the server parses them back, and the answer is
/// byte-identical to the in-process override path.
#[test]
fn overrides_roundtrip_the_http_wire() {
    let bundle = skewed_bundle(CoverageKind::Dynamic);
    let engine = Arc::new(ServingEngine::new(bundle.clone(), EngineConfig::default()));
    let server = HttpServer::bind(
        Frontend::Single(Arc::clone(&engine)),
        None,
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .expect("ephemeral bind");
    let remote = RemoteShard::connect(server.local_addr().to_string()).expect("reachable");
    let reference = ServingEngine::new(bundle.clone(), EngineConfig::default());
    let cases = vec![
        RequestOptions {
            theta: Some(0.375),
            ..RequestOptions::default()
        },
        RequestOptions {
            exclude: vec![2, 4, 8],
            ..RequestOptions::default()
        },
        RequestOptions {
            rerank: Some(RerankMode::Pra),
            ..RequestOptions::default()
        },
        RequestOptions {
            theta: Some(1.0),
            exclude: vec![0],
            rerank: Some(RerankMode::FiveD),
        },
    ];
    let users: Vec<UserId> = (0..bundle.n_users()).map(UserId).collect();
    for opts in &cases {
        for &u in &users {
            let (got, g) = remote.recommend_with_traced(u, opts).unwrap();
            let (want, wg) = reference.recommend_with_traced(u, opts).unwrap();
            assert_eq!(got.as_slice(), want.as_slice(), "{opts:?} user {u:?}");
            assert_eq!(g, wg);
        }
        // Batch wire call too.
        let (answers, _) = remote.recommend_batch_with_traced(&users, opts).unwrap();
        let (want, _) = reference.recommend_batch_with_traced(&users, opts);
        for (got, want) in answers.iter().zip(&want) {
            assert_eq!(
                got.as_ref().unwrap().as_slice(),
                want.as_ref().unwrap().as_slice()
            );
        }
    }
    // Wire override requests must not have populated the server engine's
    // cache with override lists: a default request afterwards computes
    // the true default list.
    for &u in &users {
        assert_eq!(
            remote.recommend_traced(u).unwrap().0.as_slice(),
            reference.recommend_traced(u).unwrap().0.as_slice(),
            "default list after wire overrides must be unpoisoned"
        );
    }
    drop(server);
}
