//! The sharding acceptance property: a [`ShardedEngine`] — users
//! partitioned into θ bands, each shard holding only its band's snapshot
//! sub-range — produces **byte-identical** top-N output to a single
//! [`ServingEngine`] over the same bundle, and to the batch OSLG optimizer,
//! for random datasets, every coverage kind, shard counts S ∈ {1, 2, 4, 7},
//! uneven explicit band cuts (including duplicate cuts that leave bands
//! empty), and after online ingestion.

use ganc::core::{AccuracyMode, CoverageKind, GancBuilder, UserOrdering};
use ganc::dataset::dataset::{DatasetBuilder, RatingScale};
use ganc::dataset::{Interactions, ItemId, UserId};
use ganc::preference::generalized::GeneralizedConfig;
use ganc::recommender::pop::MostPopular;
use ganc::serve::{
    EngineConfig, FitConfig, FittedModel, ModelBundle, ServingEngine, ShardConfig, ShardPlan,
    ShardedEngine,
};
use proptest::prelude::*;

const N_USERS: u32 = 12;
const N_ITEMS: u32 = 26;
const N: usize = 5;
const SAMPLE: usize = 10;
const SEED: u64 = 0x0000_0516; // OslgConfig::new's default, shared by FitConfig
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

const ALL_KINDS: [CoverageKind; 3] = [
    CoverageKind::Random,
    CoverageKind::Static,
    CoverageKind::Dynamic,
];

/// Random small rating matrices over a fixed catalog (items may go
/// unrated, exercising the train-mask exclusion).
fn arb_train() -> impl Strategy<Value = Interactions> {
    proptest::collection::vec((0u32..N_USERS, 0u32..N_ITEMS, 1u32..=5), 10..140).prop_map(
        |triples| {
            let mut b = DatasetBuilder::new("shard", RatingScale::stars_1_5());
            for (u, i, r) in triples {
                b.push(UserId(u), ItemId(i), r as f32).unwrap();
            }
            let d = b.build().unwrap();
            Interactions::from_ratings(N_USERS, N_ITEMS, d.ratings())
        },
    )
}

/// Per-user θ drawn from a coarse grid, so duplicate θ values are common
/// and quantile cuts frequently land exactly on a duplicated θ.
fn arb_theta() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0u32..=8, (N_USERS as usize)..(N_USERS as usize + 1))
        .prop_map(|grid| grid.into_iter().map(|k| k as f64 / 8.0).collect())
}

fn fit_cfg(kind: CoverageKind) -> FitConfig {
    FitConfig {
        n: N,
        coverage: kind,
        accuracy_mode: AccuracyMode::Normalized,
        sample_size: SAMPLE,
        ordering: UserOrdering::IncreasingTheta,
        seed: SEED,
    }
}

/// Sharded == unsharded == batch OSLG, then (sharded == unsharded) again
/// after both engines ingest the same interaction stream.
fn check_kind(
    train: &Interactions,
    theta: &[f64],
    kind: CoverageKind,
    ingests: &[(u32, u32)],
    plans: &[ShardPlan],
) {
    let users: Vec<UserId> = (0..N_USERS).map(UserId).collect();
    let batch = GancBuilder::new(N)
        .coverage(kind)
        .sample_size(SAMPLE)
        .build_topn(&MostPopular::fit(train), theta, train, SEED);
    let bundle = ModelBundle::fit(
        FittedModel::Pop(MostPopular::fit(train)),
        theta.to_vec(),
        train.clone(),
        &fit_cfg(kind),
    );
    let single = ServingEngine::new(bundle.clone(), EngineConfig::default());
    for u in &users {
        assert_eq!(
            single.recommend(*u).unwrap().as_slice(),
            batch.lists()[u.idx()].as_slice(),
            "{kind:?}: unsharded engine diverges from batch for {u:?}"
        );
    }

    let sharded: Vec<ShardedEngine> = plans
        .iter()
        .map(|plan| {
            ShardedEngine::new(
                bundle.clone(),
                ShardConfig {
                    plan: plan.clone(),
                    engine: EngineConfig::default(),
                },
            )
        })
        .collect();
    for (engine, plan) in sharded.iter().zip(plans) {
        // Single-request path against the batch reference.
        for u in &users {
            assert_eq!(
                engine.recommend(*u).unwrap().as_slice(),
                batch.lists()[u.idx()].as_slice(),
                "{kind:?}/{plan:?}: sharded single request diverges for {u:?}"
            );
        }
        // Batch path, split across shards.
        engine.flush_cache();
        let (answers, generation) = engine.recommend_batch_traced(&users);
        assert_eq!(generation, 0);
        for (u, got) in users.iter().zip(&answers) {
            assert_eq!(
                got.as_ref().unwrap().as_slice(),
                batch.lists()[u.idx()].as_slice(),
                "{kind:?}/{plan:?}: sharded batch diverges for {u:?}"
            );
        }
    }

    // Ingest the same stream everywhere; sharded must track unsharded
    // exactly (the batch optimizer has no ingest path to compare against).
    for &(u, i) in ingests {
        let (u, i) = (UserId(u % N_USERS), ItemId(i % N_ITEMS));
        single.ingest(u, i, 4.0).unwrap();
        for engine in &sharded {
            engine.ingest(u, i, 4.0).unwrap();
        }
    }
    if !ingests.is_empty() {
        single.flush_cache();
        for (engine, plan) in sharded.iter().zip(plans) {
            engine.flush_cache();
            for u in &users {
                assert_eq!(
                    engine.recommend(*u).unwrap(),
                    single.recommend(*u).unwrap(),
                    "{kind:?}/{plan:?}: sharded diverges after ingestion for {u:?}"
                );
            }
        }
    }
}

fn all_plans() -> Vec<ShardPlan> {
    let mut plans: Vec<ShardPlan> = SHARD_COUNTS
        .iter()
        .map(|&s| ShardPlan::Quantile(s))
        .collect();
    // Uneven hand cuts: a sliver band, a duplicate cut (empty band), and a
    // cut exactly on a θ-grid value duplicates can land on.
    plans.push(ShardPlan::Explicit(vec![0.03, 0.5, 0.5, 0.875]));
    plans
}

proptest! {
    /// The headline property: for random data, random (duplicate-heavy) θ,
    /// every coverage kind, S ∈ {1,2,4,7} and uneven explicit cuts, the
    /// sharded engine is byte-identical to the unsharded engine and the
    /// batch optimizer — before and after a random ingest stream.
    #[test]
    fn sharded_equals_unsharded_equals_batch(
        train in arb_train(),
        theta in arb_theta(),
        ingests in proptest::collection::vec((0u32..N_USERS, 0u32..N_ITEMS), 0..5),
    ) {
        for kind in ALL_KINDS {
            check_kind(&train, &theta, kind, &ingests, &all_plans());
        }
    }
}

/// A realistic skewed dataset with KDE-estimated θ (the serving fixture the
/// other acceptance suites use), all shard counts, Dyn coverage.
#[test]
fn sharded_matches_batch_on_skewed_profile() {
    let data = ganc::dataset::synth::DatasetProfile::small().generate(321);
    let split = data.split_per_user(0.5, 5).unwrap();
    let train = split.train;
    let theta = GeneralizedConfig::default().estimate(&train);
    let batch = GancBuilder::new(N)
        .coverage(CoverageKind::Dynamic)
        .sample_size(25)
        .build_topn(&MostPopular::fit(&train), &theta, &train, SEED);
    let cfg = FitConfig {
        sample_size: 25,
        ..fit_cfg(CoverageKind::Dynamic)
    };
    let bundle = ModelBundle::fit(
        FittedModel::Pop(MostPopular::fit(&train)),
        theta,
        train.clone(),
        &cfg,
    );
    for shards in SHARD_COUNTS {
        let engine = ShardedEngine::new(bundle.clone(), ShardConfig::quantile(shards));
        let users: Vec<UserId> = (0..train.n_users()).map(UserId).collect();
        let answers = engine.recommend_batch(&users);
        for (u, got) in users.iter().zip(answers) {
            assert_eq!(
                got.unwrap().as_slice(),
                batch.lists()[u.idx()].as_slice(),
                "S={shards} user {u:?}"
            );
        }
    }
}

/// TopN-indicator accuracy adaptation through the sharded path.
#[test]
fn sharded_matches_batch_in_indicator_mode() {
    let data = ganc::dataset::synth::DatasetProfile::small().generate(99);
    let split = data.split_per_user(0.5, 3).unwrap();
    let train = split.train;
    let theta = GeneralizedConfig::default().estimate(&train);
    let batch = GancBuilder::new(N)
        .coverage(CoverageKind::Dynamic)
        .accuracy_mode(AccuracyMode::TopNIndicator)
        .sample_size(20)
        .build_topn(&MostPopular::fit(&train), &theta, &train, SEED);
    let cfg = FitConfig {
        accuracy_mode: AccuracyMode::TopNIndicator,
        sample_size: 20,
        ..fit_cfg(CoverageKind::Dynamic)
    };
    let bundle = ModelBundle::fit(
        FittedModel::Pop(MostPopular::fit(&train)),
        theta,
        train.clone(),
        &cfg,
    );
    let engine = ShardedEngine::new(bundle, ShardConfig::quantile(4));
    for u in 0..train.n_users() {
        assert_eq!(
            engine.recommend(UserId(u)).unwrap().as_slice(),
            batch.lists()[u as usize].as_slice(),
            "user {u}"
        );
    }
}

/// Band metadata sanity on the skewed profile: every user lands in exactly
/// one band, bands tile the θ axis, and Dyn shards hold strict snapshot
/// sub-ranges (the O(band) state the sharding exists for).
#[test]
fn shard_layout_tiles_theta_axis() {
    let data = ganc::dataset::synth::DatasetProfile::small().generate(7);
    let split = data.split_per_user(0.5, 2).unwrap();
    let train = split.train;
    let theta = GeneralizedConfig::default().estimate(&train);
    let cfg = FitConfig {
        sample_size: 40,
        ..fit_cfg(CoverageKind::Dynamic)
    };
    let bundle = ModelBundle::fit(
        FittedModel::Pop(MostPopular::fit(&train)),
        theta,
        train.clone(),
        &cfg,
    );
    let engine = ShardedEngine::new(bundle, ShardConfig::quantile(5));
    let info = engine.shard_info();
    assert_eq!(info.len(), 5);
    assert_eq!(info[0].theta_lo, f64::NEG_INFINITY);
    assert_eq!(info.last().unwrap().theta_hi, f64::INFINITY);
    for w in info.windows(2) {
        assert_eq!(w[0].theta_hi, w[1].theta_lo, "bands must tile");
    }
    assert_eq!(
        info.iter().map(|i| i.users).sum::<usize>(),
        train.n_users() as usize
    );
    assert!(
        info.iter().any(|i| i.snapshots < 40),
        "at least one shard must hold a strict snapshot sub-range"
    );
}
