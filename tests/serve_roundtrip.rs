//! Artifact round-trip properties: for every base recommender and both
//! stateful coverage kinds, save → load must reproduce the exact top-N
//! output of the original fitted state. Seeded-RNG cases stand in for
//! proptest shrinking: each scenario runs over several generated datasets.

use ganc::core::coverage::CoverageKind;
use ganc::dataset::synth::DatasetProfile;
use ganc::dataset::{Interactions, UserId};
use ganc::preference::generalized::GeneralizedConfig;
use ganc::recommender::item_avg::ItemAvg;
use ganc::recommender::knn::{ItemKnn, ItemKnnConfig};
use ganc::recommender::pop::MostPopular;
use ganc::recommender::psvd::Psvd;
use ganc::recommender::rankmf::{RankMf, RankMfConfig};
use ganc::recommender::rsvd::{Rsvd, RsvdConfig};
use ganc::serve::{EngineConfig, FitConfig, FittedModel, ModelBundle, SaveLoad, ServingEngine};

const DATA_SEEDS: [u64; 3] = [11, 47, 2026];

fn fixture(seed: u64) -> (Interactions, Vec<f64>) {
    let data = DatasetProfile::tiny().generate(seed);
    let split = data.split_per_user(0.5, seed ^ 0xA5).unwrap();
    let theta = GeneralizedConfig::default().estimate(&split.train);
    (split.train, theta)
}

fn fit_every_model(train: &Interactions) -> Vec<FittedModel> {
    let small_mf = RsvdConfig {
        factors: 8,
        epochs: 4,
        ..RsvdConfig::default()
    };
    let small_rank = RankMfConfig {
        factors: 8,
        epochs: 3,
        ..RankMfConfig::default()
    };
    vec![
        FittedModel::Pop(MostPopular::fit(train)),
        FittedModel::ItemAvg(ItemAvg::fit(train, 5.0)),
        FittedModel::ItemKnn(ItemKnn::fit(train, ItemKnnConfig::default())),
        FittedModel::Rsvd(Rsvd::train(train, small_mf)),
        FittedModel::Psvd(Psvd::train(train, 8, 3)),
        FittedModel::RankMf(RankMf::train(train, small_rank)),
    ]
}

/// save → load → identical top-N for every recommender × coverage kind ×
/// dataset seed.
#[test]
fn loaded_bundles_serve_identical_lists() {
    for data_seed in DATA_SEEDS {
        let (train, theta) = fixture(data_seed);
        for model in fit_every_model(&train) {
            for kind in [CoverageKind::Static, CoverageKind::Dynamic] {
                let cfg = FitConfig {
                    coverage: kind,
                    sample_size: 15,
                    ..FitConfig::new(5)
                };
                let bundle = ModelBundle::fit(model.clone(), theta.clone(), train.clone(), &cfg);
                let name = bundle.model_name.clone();
                let restored = ModelBundle::from_bytes(&bundle.to_bytes().unwrap())
                    .unwrap_or_else(|e| panic!("{name}/{kind:?}/seed{data_seed}: {e}"));
                assert_eq!(restored, bundle, "{name}/{kind:?}/seed{data_seed}");

                let original = ServingEngine::new(bundle, EngineConfig::default());
                let loaded = ServingEngine::new(restored, EngineConfig::default());
                for u in 0..train.n_users() {
                    let a = original.recommend(UserId(u)).unwrap();
                    let b = loaded.recommend(UserId(u)).unwrap();
                    assert_eq!(
                        a, b,
                        "{name}/{kind:?}/seed{data_seed}: user {u} diverged after reload"
                    );
                }
            }
        }
    }
}

/// The component artifacts themselves round-trip exactly (models and θ
/// vectors saved standalone, not just inside bundles).
#[test]
fn standalone_components_round_trip() {
    let (train, theta) = fixture(99);
    let restored_theta = Vec::<f64>::from_bytes(&theta.to_bytes().unwrap()).unwrap();
    assert_eq!(restored_theta, theta);

    let restored_train = Interactions::from_bytes(&train.to_bytes().unwrap()).unwrap();
    assert_eq!(restored_train, train);

    for model in fit_every_model(&train) {
        let restored = FittedModel::from_bytes(&model.to_bytes().unwrap()).unwrap();
        assert_eq!(restored, model);
    }
}

/// Corrupted artifacts are rejected, never misread.
#[test]
fn corrupt_artifacts_are_rejected() {
    let (train, theta) = fixture(7);
    let bundle = ModelBundle::fit(
        FittedModel::Pop(MostPopular::fit(&train)),
        theta,
        train,
        &FitConfig {
            sample_size: 10,
            ..FitConfig::new(5)
        },
    );
    let bytes = bundle.to_bytes().unwrap();
    // Truncations at assorted depths must error, not panic or misparse.
    for cut in [0, 3, 5, 6, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            ModelBundle::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} accepted"
        );
    }
    // Magic and version damage.
    let mut bad = bytes.clone();
    bad[0] ^= 0xFF;
    assert!(ModelBundle::from_bytes(&bad).is_err());
    let mut bad = bytes.clone();
    bad[4] = bad[4].wrapping_add(1);
    assert!(ModelBundle::from_bytes(&bad).is_err());
}
