//! Transport-level twin of `tests/refit_hotswap.rs`: concurrent HTTP
//! clients hammer `/v1/recommend` and `/v1/ingest` while `POST
//! /admin/refit` hot-swaps bundles underneath them. Every response must
//! match exactly one generation's expected output (no torn reads crossing
//! the socket), every batch response must be single-generation, and
//! ingests racing a swap must survive into the post-churn fit.
//!
//! Same attribution trick as the in-process suite: an ItemAvg base model
//! makes non-ingested users' lists constant within a generation, so each
//! observed (user, generation, items) triple either matches that
//! generation's reference output or proves a tear.

use ganc::core::coverage::CoverageKind;
use ganc::dataset::synth::DatasetProfile;
use ganc::dataset::{Interactions, ItemId, UserId};
use ganc::http::{Frontend, HttpClient, HttpServer, RefitHook, ServerConfig};
use ganc::preference::generalized::GeneralizedConfig;
use ganc::recommender::item_avg::ItemAvg;
use ganc::serve::refit::{merge_interactions, Refitter};
use ganc::serve::{
    EngineConfig, FitConfig, FittedModel, ModelBundle, ServingEngine, ShardConfig, ShardedEngine,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use tinyjson::Value;

const N: usize = 5;

fn fit_cfg() -> FitConfig {
    FitConfig {
        coverage: CoverageKind::Dynamic,
        sample_size: 12,
        ..FitConfig::new(N)
    }
}

fn item_avg_fitter() -> Arc<Refitter> {
    Arc::new(|train: &Interactions| {
        (
            FittedModel::ItemAvg(ItemAvg::fit(train, 5.0)),
            GeneralizedConfig::default().estimate(train),
        )
    })
}

fn fixture() -> (Interactions, ModelBundle) {
    let data = DatasetProfile::tiny().generate(77);
    let split = data.split_per_user(0.5, 6).unwrap();
    let train = split.train;
    let fitter = item_avg_fitter();
    let (model, theta) = fitter(&train);
    let bundle = ModelBundle::fit(model, theta, train.clone(), &fit_cfg());
    (train, bundle)
}

fn expected_lists(bundle: ModelBundle, users: u32) -> Vec<Arc<Vec<ItemId>>> {
    let reference = ServingEngine::new(bundle, EngineConfig::default());
    (0..users)
        .map(|u| reference.recommend(UserId(u)).unwrap())
        .collect()
}

fn parse_recommend(resp_body: &[u8]) -> (u64, Vec<ItemId>) {
    let v = tinyjson::from_str(std::str::from_utf8(resp_body).unwrap()).unwrap();
    let generation = v["generation"].as_u64().unwrap();
    let items = v["items"]
        .as_array()
        .unwrap()
        .iter()
        .map(|i| ItemId(i.as_u64().unwrap() as u32))
        .collect();
    (generation, items)
}

/// Readers over HTTP while an HTTP-triggered refit loop swaps: every
/// single response and every batch attributes to exactly one generation.
#[test]
fn http_swap_stress_has_no_torn_reads() {
    let (_, bundle) = fixture();
    let n_users = bundle.n_users();
    let ingest_users: Vec<u32> = (n_users - 3..n_users).collect();
    let reader_users: Vec<u32> = (0..n_users - 3).collect();

    let engine = Arc::new(ShardedEngine::new(bundle.clone(), ShardConfig::quantile(3)));
    let hook = RefitHook {
        fitter: item_avg_fitter(),
        cfg: fit_cfg(),
        cadence: None,
    };
    let server = HttpServer::bind(
        Frontend::Sharded(Arc::clone(&engine)),
        Some(hook),
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    type GenerationLists = HashMap<u64, Vec<Arc<Vec<ItemId>>>>;
    let expected: Arc<Mutex<GenerationLists>> = Arc::new(Mutex::new(HashMap::new()));
    expected
        .lock()
        .unwrap()
        .insert(0, expected_lists(bundle, n_users));
    let stop = Arc::new(AtomicBool::new(false));
    // Refits are milliseconds while HTTP readers are setting up; pacing the
    // swapper on observed reader traffic keeps every generation actually
    // exercised under load instead of swapped away unseen.
    let sampled = Arc::new(std::sync::atomic::AtomicU64::new(0));

    std::thread::scope(|scope| {
        // Swapper: ingest over HTTP, POST /admin/refit, record the new
        // generation's expected lists from the installed baseline bundle.
        {
            let engine = Arc::clone(&engine);
            let expected = Arc::clone(&expected);
            let stop = Arc::clone(&stop);
            let sampled = Arc::clone(&sampled);
            let addr = addr.clone();
            let ingest_users = ingest_users.clone();
            scope.spawn(move || {
                let mut client = HttpClient::new(addr);
                for round in 0..6u32 {
                    // Wait for ~20 fresh reader samples on the current
                    // generation before swapping it out.
                    let floor = sampled.load(Ordering::Relaxed) + 20;
                    while sampled.load(Ordering::Relaxed) < floor {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    for (k, &u) in ingest_users.iter().enumerate() {
                        let resp = client
                            .request("GET", &format!("/v1/recommend/{u}"), None)
                            .unwrap();
                        let (_, items) = parse_recommend(&resp.body);
                        let pick = items[(round as usize + k) % N];
                        let body = format!("{{\"user\":{u},\"item\":{},\"rating\":4.0}}", pick.0);
                        let resp = client.request("POST", "/v1/ingest", Some(&body)).unwrap();
                        assert_eq!(resp.status, 200, "ingest over HTTP");
                    }
                    let resp = client.request("POST", "/admin/refit", None).unwrap();
                    assert_eq!(resp.status, 200);
                    let v: Value =
                        tinyjson::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
                    assert_eq!(
                        v["outcome"].as_str(),
                        Some("swapped"),
                        "single swapper cannot race"
                    );
                    let generation = v["generation"].as_u64().unwrap();
                    // The installed baseline is exactly what the new
                    // generation serves; record its reference output.
                    let baseline = engine.baseline_bundle();
                    expected
                        .lock()
                        .unwrap()
                        .insert(generation, expected_lists((*baseline).clone(), n_users));
                }
                stop.store(true, Ordering::Relaxed);
            });
        }

        // HTTP readers: single requests + batches, verified post-churn.
        let mut readers = Vec::new();
        for t in 0..3usize {
            let stop = Arc::clone(&stop);
            let sampled = Arc::clone(&sampled);
            let addr = addr.clone();
            let reader_users = reader_users.clone();
            readers.push(scope.spawn(move || {
                let mut client = HttpClient::new(addr);
                let mut samples: Vec<(u32, u64, Vec<ItemId>)> = Vec::new();
                let mut batches: Vec<(u64, Vec<Vec<ItemId>>)> = Vec::new();
                let batch_body = {
                    let ids: Vec<String> = reader_users.iter().map(|u| u.to_string()).collect();
                    format!("{{\"users\":[{}]}}", ids.join(","))
                };
                let mut k = t;
                while !stop.load(Ordering::Relaxed) {
                    let u = reader_users[k % reader_users.len()];
                    let resp = client
                        .request("GET", &format!("/v1/recommend/{u}"), None)
                        .unwrap();
                    assert_eq!(resp.status, 200);
                    let (generation, items) = parse_recommend(&resp.body);
                    samples.push((u, generation, items));
                    sampled.fetch_add(1, Ordering::Relaxed);
                    if k % 5 == 0 {
                        let resp = client
                            .request("POST", "/v1/recommend:batch", Some(&batch_body))
                            .unwrap();
                        assert_eq!(resp.status, 200);
                        let v =
                            tinyjson::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
                        let generation = v["generation"].as_u64().unwrap();
                        let lists: Vec<Vec<ItemId>> = v["results"]
                            .as_array()
                            .unwrap()
                            .iter()
                            .map(|slot| {
                                slot["items"]
                                    .as_array()
                                    .unwrap()
                                    .iter()
                                    .map(|i| ItemId(i.as_u64().unwrap() as u32))
                                    .collect()
                            })
                            .collect();
                        batches.push((generation, lists));
                    }
                    k += 1;
                }
                (samples, batches)
            }));
        }

        let mut total_samples = 0usize;
        let mut seen_generations = std::collections::HashSet::new();
        for reader in readers {
            let (samples, batches) = reader.join().expect("reader panicked");
            let expected = expected.lock().unwrap();
            total_samples += samples.len();
            for (u, generation, items) in samples {
                seen_generations.insert(generation);
                let gen_lists = expected
                    .get(&generation)
                    .unwrap_or_else(|| panic!("response from unknown generation {generation}"));
                assert_eq!(
                    items, *gen_lists[u as usize],
                    "torn read over HTTP: user {u} matches no single generation {generation}"
                );
            }
            for (generation, lists) in batches {
                let gen_lists = expected
                    .get(&generation)
                    .unwrap_or_else(|| panic!("batch from unknown generation {generation}"));
                for (&u, items) in reader_users.iter().zip(lists) {
                    assert_eq!(
                        items, *gen_lists[u as usize],
                        "mixed-generation HTTP batch: user {u} diverges from {generation}"
                    );
                }
            }
        }
        assert!(total_samples > 0, "readers never sampled");
        assert!(
            seen_generations.len() >= 2,
            "stress must observe multiple generations, saw {seen_generations:?}"
        );
    });
    assert_eq!(engine.generation(), 6);
}

/// Ingests fired over HTTP while refits race are never lost: after the
/// churn quiesces, the served state equals a from-scratch fit of
/// base train + every interaction ever POSTed.
#[test]
fn http_ingests_survive_swaps_and_match_from_scratch_fit() {
    let (train, bundle) = fixture();
    let n_users = bundle.n_users();
    let engine = Arc::new(ShardedEngine::new(bundle, ShardConfig::quantile(2)));
    let fitter = item_avg_fitter();
    let hook = RefitHook {
        fitter: Arc::clone(&fitter),
        cfg: fit_cfg(),
        cadence: None,
    };
    let server = HttpServer::bind(
        Frontend::Sharded(Arc::clone(&engine)),
        Some(hook),
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    let sent: Vec<(UserId, ItemId, f32)> = std::thread::scope(|scope| {
        let refitting = {
            let addr = addr.clone();
            scope.spawn(move || {
                let mut client = HttpClient::new(addr);
                for _ in 0..5 {
                    let resp = client.request("POST", "/admin/refit", None).unwrap();
                    assert_eq!(resp.status, 200);
                }
            })
        };
        let ingester = {
            let addr = addr.clone();
            scope.spawn(move || {
                let mut client = HttpClient::new(addr);
                let mut sent = Vec::new();
                for k in 0..30u32 {
                    let user = k % n_users;
                    let resp = client
                        .request("GET", &format!("/v1/recommend/{user}"), None)
                        .unwrap();
                    let (_, items) = parse_recommend(&resp.body);
                    let item = items[k as usize % N];
                    let rating = 3.0 + (k % 3) as f32;
                    let body = format!(
                        "{{\"user\":{user},\"item\":{},\"rating\":{rating}}}",
                        item.0
                    );
                    let resp = client.request("POST", "/v1/ingest", Some(&body)).unwrap();
                    assert_eq!(resp.status, 200, "racing ingest must be accepted");
                    sent.push((UserId(user), item, rating));
                }
                sent
            })
        };
        refitting.join().expect("refitter panicked");
        ingester.join().expect("ingester panicked")
    });

    // Quiesce through the HTTP endpoint, consuming any log tail.
    let mut client = HttpClient::new(addr);
    let resp = client.request("POST", "/admin/refit", None).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(engine.pending_ingests(), 0);

    let accumulated = merge_interactions(&train, &sent);
    let (model, theta) = fitter(&accumulated);
    let reference = ServingEngine::new(
        ModelBundle::fit(model, theta, accumulated, &fit_cfg()),
        EngineConfig::default(),
    );
    for u in 0..n_users {
        let resp = client
            .request("GET", &format!("/v1/recommend/{u}"), None)
            .unwrap();
        let (_, items) = parse_recommend(&resp.body);
        assert_eq!(
            items,
            *reference.recommend(UserId(u)).unwrap(),
            "user {u} diverges from the from-scratch fit on everything POSTed"
        );
    }
}

/// The refit endpoint without a configured hook (or on a single-engine
/// front) refuses cleanly instead of crashing or half-swapping.
#[test]
fn refit_endpoint_requires_hook_and_sharded_front() {
    let (_, bundle) = fixture();
    // Sharded front, no hook.
    let engine = Arc::new(ShardedEngine::new(bundle.clone(), ShardConfig::quantile(2)));
    let server = HttpServer::bind(
        Frontend::Sharded(engine),
        None,
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    let mut client = HttpClient::new(server.local_addr().to_string());
    let resp = client.request("POST", "/admin/refit", None).unwrap();
    assert_eq!(resp.status, 400);

    // Single front, hook present: still refused (no ingest log to refit
    // from), and the engine's generation must not move.
    let single = Arc::new(ServingEngine::new(bundle, EngineConfig::default()));
    let server = HttpServer::bind(
        Frontend::Single(Arc::clone(&single)),
        Some(RefitHook {
            fitter: item_avg_fitter(),
            cfg: fit_cfg(),
            cadence: None,
        }),
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    let mut client = HttpClient::new(server.local_addr().to_string());
    let resp = client.request("POST", "/admin/refit", None).unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(single.generation(), 0);
}
