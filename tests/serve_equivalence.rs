//! The acceptance property of the serving subsystem: a single-user query
//! served from a fitted [`ModelBundle`] equals the batch
//! `GancBuilder::build_topn` output for that user — tolerance-exact, for
//! every coverage kind, including Dyn's coupled optimizer (sampled users
//! serve their sequential-phase lists; everyone else runs the same
//! nearest-snapshot query the batch parallel phase runs).

use ganc::core::{AccuracyMode, CoverageKind, GancBuilder, UserOrdering};
use ganc::dataset::synth::DatasetProfile;
use ganc::dataset::{Interactions, UserId};
use ganc::preference::generalized::GeneralizedConfig;
use ganc::recommender::pop::MostPopular;
use ganc::recommender::rsvd::{Rsvd, RsvdConfig};
use ganc::serve::{EngineConfig, FitConfig, FittedModel, ModelBundle, ServingEngine};

const N: usize = 5;
const SAMPLE: usize = 25;
const SEED: u64 = 0x0000_0516; // OslgConfig::new's default, shared by FitConfig

fn fixture() -> (Interactions, Vec<f64>) {
    let data = DatasetProfile::small().generate(321);
    let split = data.split_per_user(0.5, 5).unwrap();
    let theta = GeneralizedConfig::default().estimate(&split.train);
    (split.train, theta)
}

fn check_equivalence(model: FittedModel, kind: CoverageKind, mode: AccuracyMode) {
    let (train, theta) = fixture();
    let builder = GancBuilder::new(N)
        .coverage(kind)
        .accuracy_mode(mode)
        .sample_size(SAMPLE);
    let cfg = FitConfig {
        n: N,
        coverage: kind,
        accuracy_mode: mode,
        sample_size: SAMPLE,
        ordering: UserOrdering::IncreasingTheta,
        seed: SEED,
    };

    let bound = model.bind(&train);
    let batch = {
        let rec: &dyn ganc::recommender::Recommender = &bound;
        builder.build_topn(rec, &theta, &train, SEED)
    };
    let bundle = ModelBundle::fit(model, theta, train.clone(), &cfg);
    let engine = ServingEngine::new(bundle, EngineConfig::default());

    for u in 0..train.n_users() {
        let served = engine.recommend(UserId(u)).unwrap();
        assert_eq!(
            served.as_slice(),
            batch.lists()[u as usize].as_slice(),
            "{kind:?}/{mode:?}: user {u} served list diverges from batch"
        );
    }
}

#[test]
fn single_user_queries_match_batch_static() {
    let (train, _) = fixture();
    check_equivalence(
        FittedModel::Pop(MostPopular::fit(&train)),
        CoverageKind::Static,
        AccuracyMode::Normalized,
    );
}

#[test]
fn single_user_queries_match_batch_random() {
    let (train, _) = fixture();
    check_equivalence(
        FittedModel::Pop(MostPopular::fit(&train)),
        CoverageKind::Random,
        AccuracyMode::Normalized,
    );
}

#[test]
fn single_user_queries_match_batch_dynamic() {
    let (train, _) = fixture();
    check_equivalence(
        FittedModel::Pop(MostPopular::fit(&train)),
        CoverageKind::Dynamic,
        AccuracyMode::Normalized,
    );
}

#[test]
fn single_user_queries_match_batch_dynamic_indicator_mode() {
    let (train, _) = fixture();
    check_equivalence(
        FittedModel::Pop(MostPopular::fit(&train)),
        CoverageKind::Dynamic,
        AccuracyMode::TopNIndicator,
    );
}

#[test]
fn single_user_queries_match_batch_dynamic_personalized_model() {
    let (train, _) = fixture();
    let rsvd = Rsvd::train(
        &train,
        RsvdConfig {
            factors: 8,
            epochs: 5,
            ..RsvdConfig::default()
        },
    );
    check_equivalence(
        FittedModel::Rsvd(rsvd),
        CoverageKind::Dynamic,
        AccuracyMode::Normalized,
    );
}

/// Batched serving must agree with the batch optimizer too (same property
/// through the multi-threaded path).
#[test]
fn batched_serving_matches_batch_output() {
    let (train, theta) = fixture();
    let pop = MostPopular::fit(&train);
    let batch = GancBuilder::new(N)
        .coverage(CoverageKind::Dynamic)
        .sample_size(SAMPLE)
        .build_topn(&pop, &theta, &train, SEED);
    let cfg = FitConfig {
        sample_size: SAMPLE,
        ..FitConfig::new(N)
    };
    let bundle = ModelBundle::fit(FittedModel::Pop(pop), theta, train.clone(), &cfg);
    let engine = ServingEngine::new(bundle, EngineConfig::default());
    let users: Vec<UserId> = (0..train.n_users()).map(UserId).collect();
    let answers = engine.recommend_batch(&users);
    for (u, got) in users.iter().zip(answers) {
        assert_eq!(
            got.unwrap().as_slice(),
            batch.lists()[u.idx()].as_slice(),
            "user {u:?}"
        );
    }
}
