//! The fused-scorer acceptance property: [`UserQuery`]'s single-pass
//! candidate-only scoring must return **byte-identical** lists to a naive
//! three-buffer reference scorer (dense accuracy fill → dense coverage fill
//! → dense combine → buffered selection) across every coverage kind, θ
//! extremes, and exclusion lists.

use ganc::core::accuracy::{AccuracyScorer, NormalizedScores};
use ganc::core::coverage::{CoverageSnapshots, DynCoverage, RandCoverage, StatCoverage};
use ganc::core::query::{combine_into, CoverageProvider, UserQuery};
use ganc::dataset::dataset::{DatasetBuilder, RatingScale};
use ganc::dataset::{Interactions, ItemId, UserId};
use ganc::recommender::pop::MostPopular;
use ganc::recommender::topn::{select_top_n, train_item_mask, unseen_train_candidates};
use proptest::prelude::*;

const N_USERS: u32 = 10;
const N_ITEMS: u32 = 24;

/// Random small rating matrices with a fixed catalog so item ids can go
/// unrated (exercising the `in_train` exclusion).
fn arb_train() -> impl Strategy<Value = Interactions> {
    proptest::collection::vec((0u32..N_USERS, 0u32..N_ITEMS, 1u32..=5), 8..160).prop_map(
        |triples| {
            let mut b = DatasetBuilder::new("fused", RatingScale::stars_1_5());
            for (u, i, r) in triples {
                b.push(UserId(u), ItemId(i), r as f32).unwrap();
            }
            let d = b.build().unwrap();
            Interactions::from_ratings(N_USERS, N_ITEMS, d.ratings())
        },
    )
}

/// The three-buffer reference scorer the tentpole replaced.
#[allow(clippy::too_many_arguments)]
fn naive_topn(
    arec: &dyn AccuracyScorer,
    train: &Interactions,
    in_train: &[bool],
    user: UserId,
    theta_u: f64,
    coverage: &dyn CoverageProvider,
    extra_seen: &[u32],
    n: usize,
) -> Vec<ItemId> {
    let n_items = train.n_items() as usize;
    let mut a = vec![0.0; n_items];
    let mut c = vec![0.0; n_items];
    let mut s = vec![0.0; n_items];
    arec.accuracy_scores(user, &mut a);
    coverage.coverage_into(user, theta_u, &mut c);
    combine_into(theta_u, &a, &c, &mut s);
    let candidates = unseen_train_candidates(train, in_train, user)
        .filter(|i| extra_seen.binary_search(i).is_err());
    select_top_n(&s, candidates, n)
}

fn check_all_providers(train: &Interactions, thetas: &[f64], extra_seen: &[u32], n: usize) {
    let pop = MostPopular::fit(train);
    let arec = NormalizedScores::new(&pop);
    let in_train = train_item_mask(train);

    let stat = StatCoverage::fit(train);
    let rand = RandCoverage::new(0xFEED);
    let mut dynamic = DynCoverage::new(train.n_items());
    dynamic.observe(&[ItemId(0), ItemId(1), ItemId(1), ItemId(5 % N_ITEMS)]);
    // Snapshots built two ways: sparse increments in θ order, and dense
    // out-of-order pushes followed by a sort.
    let mut snaps = CoverageSnapshots::for_items(train.n_items());
    let mut cov = DynCoverage::new(train.n_items());
    for (k, t) in [0.1, 0.35, 0.6, 0.85].iter().enumerate() {
        let list = [
            ItemId((k as u32 * 3) % N_ITEMS),
            ItemId((k as u32 * 7 + 2) % N_ITEMS),
        ];
        cov.observe(&list);
        snaps.push_assigned(*t, &list);
    }
    let mut snaps_sorted = CoverageSnapshots::new();
    let mut cov2 = DynCoverage::new(train.n_items());
    for (t, item) in [(0.7, 3u32), (0.2, 9), (0.5, 1)] {
        cov2.observe(&[ItemId(item % N_ITEMS)]);
        snaps_sorted.push(t, &cov2.snapshot());
    }
    snaps_sorted.sort_by_theta();

    let providers: [&dyn CoverageProvider; 5] = [&stat, &rand, &dynamic, &snaps, &snaps_sorted];
    let mut q = UserQuery::new(&arec, train, &in_train, n);
    for provider in providers {
        for u in 0..train.n_users() {
            for &t in thetas {
                let fused = q.topn_excluding(UserId(u), t, provider, extra_seen);
                let naive = naive_topn(
                    &arec,
                    train,
                    &in_train,
                    UserId(u),
                    t,
                    provider,
                    extra_seen,
                    n,
                );
                assert_eq!(fused, naive, "user {u} θ={t} n={n}");
            }
        }
    }
}

proptest! {
    /// Fused ≡ naive on random matrices, random θ, random exclusions.
    #[test]
    fn fused_matches_naive_reference(
        train in arb_train(),
        theta in 0.0f64..1.0,
        extra in proptest::collection::vec(0u32..N_ITEMS, 0..6),
        n in 1usize..8,
    ) {
        let mut extra = extra;
        extra.sort_unstable();
        extra.dedup();
        check_all_providers(&train, &[theta], &extra, n);
    }

    /// θ extremes flip the objective entirely; the equivalence must hold
    /// exactly at both ends and just inside them.
    #[test]
    fn fused_matches_naive_at_theta_extremes(train in arb_train()) {
        check_all_providers(&train, &[0.0, f64::EPSILON, 0.5, 1.0 - f64::EPSILON, 1.0], &[], 5);
    }
}

/// Deep snapshot chains cross checkpoint boundaries; the patched view must
/// stay exact for every nearest-θ resolution.
#[test]
fn fused_matches_naive_across_checkpoint_boundaries() {
    let mut b = DatasetBuilder::new("chain", RatingScale::stars_1_5());
    for u in 0..N_USERS {
        for i in 0..6 {
            b.push(UserId(u), ItemId((u * 5 + i) % N_ITEMS), 4.0)
                .unwrap();
        }
    }
    let train = Interactions::from_ratings(N_USERS, N_ITEMS, b.build().unwrap().ratings());
    let pop = MostPopular::fit(&train);
    let arec = NormalizedScores::new(&pop);
    let in_train = train_item_mask(&train);

    let mut snaps = CoverageSnapshots::for_items(N_ITEMS);
    let mut cov = DynCoverage::new(N_ITEMS);
    let steps = 200;
    for k in 0..steps {
        let list = [ItemId((k * 11) % N_ITEMS), ItemId((k * 13 + 1) % N_ITEMS)];
        cov.observe(&list);
        snaps.push_assigned(k as f64 / steps as f64, &list);
    }

    let mut q = UserQuery::new(&arec, &train, &in_train, 6);
    for u in 0..train.n_users() {
        for step in 0..=40 {
            let t = step as f64 / 40.0;
            let fused = q.topn_excluding(UserId(u), t, &snaps, &[]);
            let naive = naive_topn(&arec, &train, &in_train, UserId(u), t, &snaps, &[], 6);
            assert_eq!(fused, naive, "user {u} θ={t}");
        }
    }
}

/// Excluding a user's entire previous list must refill from the remainder,
/// identically in both scorers.
#[test]
fn fused_exclusion_refill_matches_naive() {
    let data = ganc::dataset::synth::DatasetProfile::tiny().generate(77);
    let split = data.split_per_user(0.5, 9).unwrap();
    let train = split.train;
    let pop = MostPopular::fit(&train);
    let arec = NormalizedScores::new(&pop);
    let in_train = train_item_mask(&train);
    let stat = StatCoverage::fit(&train);
    let mut q = UserQuery::new(&arec, &train, &in_train, 5);
    for u in 0..train.n_users() {
        let first = q.topn_excluding(UserId(u), 0.4, &stat, &[]);
        let mut extra: Vec<u32> = first.iter().map(|i| i.0).collect();
        extra.sort_unstable();
        let fused = q.topn_excluding(UserId(u), 0.4, &stat, &extra);
        let naive = naive_topn(&arec, &train, &in_train, UserId(u), 0.4, &stat, &extra, 5);
        assert_eq!(fused, naive, "user {u}");
        for item in &fused {
            assert!(!first.contains(item), "user {u}: {item:?} was excluded");
        }
    }
}
