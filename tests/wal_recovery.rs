//! Crash-recovery oracle suite for the per-node WAL and exactly-once
//! ingestion (PR 8).
//!
//! The contract under test: an ingest is acknowledged only after it is in
//! the write-ahead log, so a node killed at *any* moment — including
//! SIGKILL mid-ingest-storm, with torn bytes at the log's tail — recovers
//! on restart to exactly the state a from-scratch
//! `ModelBundle::fit` produces on base train + every acknowledged
//! interaction. Idempotency keys make the ack itself retryable: resending
//! an acknowledged interaction (same key) is a no-op across restarts.
//!
//! Three layers of evidence:
//!
//! 1. **Framing properties** (proptest): record encode/decode round-trips
//!    exactly; a stream cut at an arbitrary byte recovers the longest
//!    valid prefix; a flipped byte never panics the decoder and never
//!    yields a record that was not written.
//! 2. **In-process crash simulation**: drop an engine without refitting
//!    (the WAL survives, nothing else does), re-attach, and compare
//!    against the from-scratch oracle — including a torn tail and a
//!    crash *between* artifact persist and WAL truncation (the bounded
//!    double-apply that must self-heal).
//! 3. **Two-process SIGKILL oracle**: a real HTTP node (this test binary
//!    re-executed, the `examples/http_demo.rs` pattern) is killed with
//!    SIGKILL in the middle of a keyed ingest storm, restarted on the
//!    same WAL + artifact, re-sent the full storm under the same keys,
//!    refit, and compared user-by-user against the oracle.

use ganc::core::query::{band_bounds, cut_theta_bands};
use ganc::core::CoverageKind;
use ganc::dataset::synth::DatasetProfile;
use ganc::dataset::{Interactions, ItemId, UserId};
use ganc::http::testing::FlakyPeer;
use ganc::http::{
    Frontend, HttpClient, HttpServer, PeerTransport, RefitHook, RouterNode, ServerConfig,
    ShardRoute,
};
use ganc::preference::generalized::GeneralizedConfig;
use ganc::recommender::item_avg::ItemAvg;
use ganc::serve::refit::{merge_interactions, RefitOutcome, Refitter};
use ganc::serve::{
    decode_stream, encode_record, DurableConfig, DurableLog, EngineConfig, FitConfig, FittedModel,
    IngestAck, ModelBundle, SaveLoad, ServingEngine, ShardConfig, ShardedEngine, WalRecord,
};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tinyjson::Value;

const N: usize = 5;

fn fit_cfg() -> FitConfig {
    FitConfig {
        coverage: CoverageKind::Dynamic,
        sample_size: 12,
        ..FitConfig::new(N)
    }
}

fn item_avg_fitter() -> Arc<Refitter> {
    Arc::new(|train: &Interactions| {
        (
            FittedModel::ItemAvg(ItemAvg::fit(train, 5.0)),
            GeneralizedConfig::default().estimate(train),
        )
    })
}

fn fixture() -> (Interactions, ModelBundle) {
    let data = DatasetProfile::tiny().generate(29);
    let split = data.split_per_user(0.5, 6).unwrap();
    let train = split.train;
    let fitter = item_avg_fitter();
    let (model, theta) = fitter(&train);
    let bundle = ModelBundle::fit(model, theta, train.clone(), &fit_cfg());
    (train, bundle)
}

/// A per-test scratch file under the OS temp dir (unique per process so
/// parallel `cargo test` runs never collide).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ganc_wal_recovery");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let path = dir.join(format!("{name}_{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// The oracle: a fresh engine over a from-scratch fit of base train plus
/// `sent`, in send order (merge is last-rating-wins).
fn oracle_engine(train: &Interactions, sent: &[(UserId, ItemId, f32)]) -> ServingEngine {
    let accumulated = merge_interactions(train, sent);
    let fitter = item_avg_fitter();
    let (model, theta) = fitter(&accumulated);
    ServingEngine::new(
        ModelBundle::fit(model, theta, accumulated, &fit_cfg()),
        EngineConfig::default(),
    )
}

/// Every user's list must match the oracle exactly.
fn assert_matches_oracle(engine: &ShardedEngine, oracle: &ServingEngine, n_users: u32, ctx: &str) {
    for u in 0..n_users {
        assert_eq!(
            engine.recommend(UserId(u)).unwrap(),
            oracle.recommend(UserId(u)).unwrap(),
            "{ctx}: user {u} diverges from the from-scratch fit"
        );
    }
}

/// Deterministic storm of `n` interactions inside the fixture's id space.
fn storm(n: usize, n_users: u32, n_items: u32) -> Vec<(UserId, ItemId, f32)> {
    (0..n)
        .map(|k| {
            (
                UserId(k as u32 % n_users),
                ItemId((k as u32 * 7 + 3) % n_items),
                1.0 + (k % 8) as f32 * 0.5,
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// 1. Framing properties
// ---------------------------------------------------------------------------

/// Arbitrary WAL records: any generation, ids, bit-exact ratings on a
/// 0.1 grid, and optional short alphanumeric keys.
fn arb_records() -> impl Strategy<Value = Vec<WalRecord>> {
    let key = proptest::collection::vec(0u32..36, 0..12).prop_map(|chars| {
        chars
            .iter()
            .map(|&c| char::from_digit(c, 36).unwrap())
            .collect::<String>()
    });
    proptest::collection::vec(
        (0u64..u64::MAX, (0u32..1000, 0u32..1000), 0u32..100, key),
        0..20,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|(generation, (u, i), r, key)| {
                if key.is_empty() && generation % 5 == 0 {
                    WalRecord::Key {
                        generation,
                        key: format!("g{generation}"),
                    }
                } else {
                    WalRecord::Ingest {
                        generation,
                        user: UserId(u),
                        item: ItemId(i),
                        rating: r as f32 / 10.0,
                        key: (!key.is_empty()).then_some(key),
                    }
                }
            })
            .collect()
    })
}

fn encode_all(records: &[WalRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut stream = Vec::new();
    let mut ends = Vec::new();
    for rec in records {
        stream.extend_from_slice(&encode_record(rec));
        ends.push(stream.len());
    }
    (stream, ends)
}

proptest! {
    /// Encode → decode is the identity on any record sequence, and a
    /// clean stream is never reported corrupted.
    #[test]
    fn prop_record_framing_round_trips(records in arb_records()) {
        let (stream, _) = encode_all(&records);
        let (decoded, summary) = decode_stream(&stream);
        prop_assert_eq!(&decoded, &records);
        prop_assert!(!summary.corrupted, "clean stream flagged corrupted");
        prop_assert_eq!(summary.records, records.len() as u64);
        prop_assert_eq!(summary.bytes, stream.len() as u64);
    }

    /// A stream cut at an arbitrary byte (a torn tail) recovers exactly
    /// the records whose frames lie fully before the cut — the longest
    /// valid prefix — and flags the tear iff bytes were dropped.
    #[test]
    fn prop_truncation_recovers_longest_valid_prefix(
        records in arb_records(),
        cut_permille in 0usize..=1000,
    ) {
        let (stream, ends) = encode_all(&records);
        let cut = stream.len() * cut_permille / 1000;
        let (decoded, summary) = decode_stream(&stream[..cut]);
        let whole = ends.iter().filter(|&&e| e <= cut).count();
        prop_assert_eq!(decoded.len(), whole, "cut at {} of {}", cut, stream.len());
        prop_assert_eq!(&decoded, &records[..whole]);
        // A cut exactly on a frame boundary leaves a clean (shorter) log;
        // anywhere else leaves a torn frame the decoder must report.
        let clean = cut == 0 || ends.contains(&cut);
        prop_assert_eq!(summary.corrupted, !clean);
    }

    /// A flipped byte anywhere in the stream never panics the decoder and
    /// never conjures a record that was not written: whatever decodes is a
    /// prefix of the original sequence (CRC/length checks stop the replay
    /// at the damaged record; with ~2^-32 CRC-collision odds excepted).
    #[test]
    fn prop_bit_flips_never_panic_and_never_fabricate(
        records in arb_records(),
        at_permille in 0usize..1000,
        flip in 1u32..=255,
    ) {
        let (mut stream, _) = encode_all(&records);
        if stream.is_empty() {
            return;
        }
        let at = (stream.len() - 1) * at_permille / 1000;
        stream[at] ^= flip as u8;
        let (decoded, _) = decode_stream(&stream);
        prop_assert!(decoded.len() <= records.len());
        prop_assert_eq!(&decoded[..], &records[..decoded.len()]);
    }
}

// ---------------------------------------------------------------------------
// 2. Durable-log semantics across reopen
// ---------------------------------------------------------------------------

/// Keys acknowledged before a restart still dedup after it, and pending
/// records replay 1:1.
#[test]
fn dedup_and_pending_survive_reopen() {
    let path = scratch("reopen");
    {
        let (log, recovered) = DurableLog::open(DurableConfig::new(&path)).unwrap();
        assert!(recovered.is_empty(), "fresh log recovered something");
        for k in 0..4u32 {
            let ack = log
                .append(Some(&format!("r{k}")), 0, UserId(k), ItemId(k), 2.0)
                .unwrap();
            assert_eq!(ack, IngestAck::Applied);
        }
    }
    let (log, recovered) = DurableLog::open(DurableConfig::new(&path)).unwrap();
    let expect: Vec<(UserId, ItemId, f32)> = (0..4).map(|k| (UserId(k), ItemId(k), 2.0)).collect();
    assert_eq!(recovered, expect);
    assert!(!log.replay_summary().corrupted);
    for k in 0..4u32 {
        let ack = log
            .append(Some(&format!("r{k}")), 1, UserId(k), ItemId(k), 2.0)
            .unwrap();
        assert_eq!(ack, IngestAck::Deduplicated, "key r{k} forgot its ack");
    }
    assert_eq!(log.stats().dedup_hits, 4);
    std::fs::remove_file(&path).ok();
}

/// Truncation keeps racing ingests whole, shrinks consumed keys to stubs,
/// and both halves survive a reopen: racers replay, every key still
/// dedups.
#[test]
fn truncate_retains_racers_and_remembers_consumed_keys() {
    let path = scratch("truncate");
    {
        let (log, _) = DurableLog::open(DurableConfig::new(&path)).unwrap();
        for k in 0..5u32 {
            log.append(Some(&format!("t{k}")), 0, UserId(k), ItemId(k), 1.5)
                .unwrap();
        }
        // A refit consumed the first 3; records 3 and 4 raced it.
        log.truncate(3, 7).unwrap();
        let stats = log.stats();
        assert_eq!(stats.truncations, 1);
        assert_eq!(stats.records, 5, "3 key stubs + 2 whole racers");
    }
    let (log, recovered) = DurableLog::open(DurableConfig::new(&path)).unwrap();
    let racers: Vec<(UserId, ItemId, f32)> = (3..5).map(|k| (UserId(k), ItemId(k), 1.5)).collect();
    assert_eq!(recovered, racers, "only racers re-apply after a refit");
    for k in 0..5u32 {
        let ack = log
            .append(Some(&format!("t{k}")), 8, UserId(k), ItemId(k), 1.5)
            .unwrap();
        assert_eq!(
            ack,
            IngestAck::Deduplicated,
            "key t{k} must dedup whether consumed or racing"
        );
    }
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// 3. In-process crash simulation against the oracle
// ---------------------------------------------------------------------------

/// Crash without a single refit: every acknowledged ingest lives only in
/// the WAL. A fresh engine (different shard plan, same base artifact)
/// replays it and must land exactly on the from-scratch fit; resending
/// every key is a pure no-op.
#[test]
fn crash_recovery_matches_from_scratch_fit() {
    let path = scratch("crash_sim");
    let (train, bundle) = fixture();
    let n_users = bundle.n_users();
    let sent = storm(30, n_users, bundle.n_items());

    let engine = ShardedEngine::new(bundle.clone(), ShardConfig::quantile(2));
    engine.attach_durable(DurableConfig::new(&path)).unwrap();
    for (k, &(u, i, r)) in sent.iter().enumerate() {
        let ack = engine
            .ingest_keyed(Some(&format!("sim-{k}")), u, i, r)
            .unwrap();
        assert_eq!(ack, IngestAck::Applied);
    }
    drop(engine); // SIGKILL stand-in: no refit, no truncate, WAL remains.

    let revived = ShardedEngine::new(bundle, ShardConfig::quantile(3));
    let replay = revived.attach_durable(DurableConfig::new(&path)).unwrap();
    assert_eq!(replay.records, 30, "every acknowledged ingest replays");
    assert!(!replay.corrupted);

    // Exactly-once across the restart: the full storm resent under its
    // original keys changes nothing.
    for (k, &(u, i, r)) in sent.iter().enumerate() {
        let ack = revived
            .ingest_keyed(Some(&format!("sim-{k}")), u, i, r)
            .unwrap();
        assert_eq!(ack, IngestAck::Deduplicated, "resend {k} re-applied");
    }
    assert_eq!(
        revived.pending_ingests(),
        30,
        "dedup no-ops must not grow the log"
    );

    let fitter = item_avg_fitter();
    let outcome = revived.refit_once(fitter.as_ref(), &fit_cfg());
    assert!(matches!(outcome, RefitOutcome::Swapped { .. }));
    assert_matches_oracle(
        &revived,
        &oracle_engine(&train, &sent),
        n_users,
        "crash recovery",
    );
    std::fs::remove_file(&path).ok();
}

/// With no `artifact_path` configured, a refit swap exists only in
/// memory — the WAL is the *sole* durable copy of every acknowledged
/// ingest. Truncating it after such a swap would orphan the consumed
/// ingests on the next crash, so the refit must leave the WAL alone and a
/// post-refit crash must still recover everything.
#[test]
fn refit_without_artifact_path_keeps_wal_records() {
    let path = scratch("no_artifact_refit");
    let (train, bundle) = fixture();
    let n_users = bundle.n_users();
    let sent = storm(12, n_users, bundle.n_items());

    let engine = ShardedEngine::new(bundle, ShardConfig::quantile(2));
    engine.attach_durable(DurableConfig::new(&path)).unwrap();
    for (k, &(u, i, r)) in sent.iter().enumerate() {
        let ack = engine
            .ingest_keyed(Some(&format!("na{k}")), u, i, r)
            .unwrap();
        assert_eq!(ack, IngestAck::Applied);
    }

    let fitter = item_avg_fitter();
    let outcome = engine.refit_once(fitter.as_ref(), &fit_cfg());
    assert!(matches!(outcome, RefitOutcome::Swapped { .. }));
    let stats = engine.wal_stats().expect("stats after attach");
    assert_eq!(
        stats.truncations, 0,
        "in-memory-only swap must not truncate"
    );
    assert_eq!(stats.records, 12, "every acknowledged ingest stays on disk");
    drop(engine); // SIGKILL stand-in: the swapped bundle is gone.

    // Restart on the *original* bundle — exactly what a real crash sees.
    let (_, bundle) = fixture();
    let revived = ShardedEngine::new(bundle, ShardConfig::quantile(2));
    let replay = revived.attach_durable(DurableConfig::new(&path)).unwrap();
    assert_eq!(replay.records, 12, "nothing was orphaned by the refit");
    assert!(!replay.corrupted);
    revived.refit_once(fitter.as_ref(), &fit_cfg());
    assert_matches_oracle(
        &revived,
        &oracle_engine(&train, &sent),
        n_users,
        "refit without artifact",
    );
    std::fs::remove_file(&path).ok();
}

/// A tear in the last record (the crash landed mid-`write`) is dropped
/// cleanly: replay applies exactly the intact prefix, never panics, never
/// applies garbage — and the recovered node still matches the oracle for
/// that prefix.
#[test]
fn torn_tail_applies_exactly_the_intact_prefix() {
    let path = scratch("torn_tail");
    let (train, bundle) = fixture();
    let n_users = bundle.n_users();
    let sent = storm(12, n_users, bundle.n_items());

    let engine = ShardedEngine::new(bundle.clone(), ShardConfig::quantile(2));
    engine.attach_durable(DurableConfig::new(&path)).unwrap();
    for &(u, i, r) in &sent {
        engine.ingest(u, i, r).unwrap();
    }
    drop(engine);

    // Tear the last record: chop 3 bytes off the file's tail.
    let len = std::fs::metadata(&path).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(len - 3).unwrap();
    drop(f);

    let revived = ShardedEngine::new(bundle, ShardConfig::quantile(2));
    let replay = revived.attach_durable(DurableConfig::new(&path)).unwrap();
    assert_eq!(replay.records, 11, "the torn record must not replay");
    assert!(replay.corrupted, "the tear must be reported");

    let fitter = item_avg_fitter();
    revived.refit_once(fitter.as_ref(), &fit_cfg());
    assert_matches_oracle(
        &revived,
        &oracle_engine(&train, &sent[..11]),
        n_users,
        "torn tail",
    );
    std::fs::remove_file(&path).ok();
}

/// Crash *between* "persist refitted artifact" and "truncate WAL": the
/// node restarts on the new artifact with the old, un-truncated WAL, so
/// every consumed ingest re-applies on top of a bundle that already
/// contains it. The merge is last-rating-wins, so this double-apply must
/// converge to the same oracle — the invariant that makes
/// persist-then-truncate crash-safe in that order.
#[test]
fn double_apply_after_unpersisted_truncate_self_heals() {
    let path = scratch("double_apply");
    let (train, bundle) = fixture();
    let n_users = bundle.n_users();
    let sent = storm(20, n_users, bundle.n_items());

    // Build the WAL of the storm (acknowledged, never truncated).
    {
        let (log, _) = DurableLog::open(DurableConfig::new(&path)).unwrap();
        for (k, &(u, i, r)) in sent.iter().enumerate() {
            log.append(Some(&format!("d{k}")), 0, u, i, r).unwrap();
        }
    }
    // The "persisted artifact": a from-scratch fit that already contains
    // the storm — exactly what refit persisted before the crash.
    let accumulated = merge_interactions(&train, &sent);
    let fitter = item_avg_fitter();
    let (model, theta) = fitter(&accumulated);
    let refitted = ModelBundle::fit(model, theta, accumulated, &fit_cfg());

    let revived = ShardedEngine::new(refitted, ShardConfig::quantile(2));
    let replay = revived.attach_durable(DurableConfig::new(&path)).unwrap();
    assert_eq!(replay.records, 20, "the whole WAL re-applies");

    revived.refit_once(fitter.as_ref(), &fit_cfg());
    assert_matches_oracle(
        &revived,
        &oracle_engine(&train, &sent),
        n_users,
        "double apply",
    );
    std::fs::remove_file(&path).ok();
}

/// The local-slice dedup fix: a keyed ingest resent after a partial
/// fan-out failure used to double-bump the live popularity of local
/// `ServingEngine` slices behind a router — they have no WAL to dedup
/// through, and the router only remembered keys after *fully* successful
/// fan-outs. The router now dedups local applies itself: the resend
/// repairs the failed remote while local counters stay bumped exactly
/// once, and a further resend is acknowledged as deduplicated without
/// touching anything.
#[test]
fn resent_keyed_ingest_after_partial_fanout_bumps_locals_once() {
    let (_, bundle) = fixture();
    let cuts = cut_theta_bands(&bundle.theta, 2);
    let (lo0, hi0) = band_bounds(&cuts, 0);
    let (lo1, hi1) = band_bounds(&cuts, 1);
    let local = Arc::new(ServingEngine::new(
        bundle.slice_theta_band(lo0, hi0),
        EngineConfig::default(),
    ));
    let remote_engine = Arc::new(ServingEngine::new(
        bundle.slice_theta_band(lo1, hi1),
        EngineConfig::default(),
    ));
    let flaky = FlakyPeer::new(
        Arc::new(Frontend::Single(Arc::clone(&remote_engine))) as Arc<dyn PeerTransport>
    );
    let router = Arc::new(RouterNode::new(
        Arc::clone(&bundle.theta),
        cuts,
        vec![
            ShardRoute::Local(Arc::clone(&local)),
            ShardRoute::Remote(Arc::clone(&flaky) as Arc<dyn PeerTransport>),
        ],
    ));
    let server = HttpServer::bind(
        Frontend::Router(router),
        None,
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    let mut client = HttpClient::new(server.local_addr().to_string());
    let json =
        |resp: &[u8]| -> Value { tinyjson::from_str(std::str::from_utf8(resp).unwrap()).unwrap() };
    let body = r#"{"user":0,"item":1,"rating":4.0,"key":"retry-0"}"#;

    // First send: the remote band fails after the local slice applied.
    // The 502 means "at least one route is missing this — resend, same
    // key"; at-least-once would be lost without the retry.
    flaky.fail_ingests(1);
    let resp = client.request("POST", "/v1/ingest", Some(body)).unwrap();
    assert_eq!(resp.status, 502, "partial fan-out must not be acked");
    assert_eq!(local.stats().ingested, 1, "local slice applied");
    assert_eq!(remote_engine.stats().ingested, 0, "remote missed it");

    // The resend repairs the remote; the local slice is *not* re-applied.
    let resp = client.request("POST", "/v1/ingest", Some(body)).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(json(&resp.body)["deduplicated"].as_bool(), Some(false));
    assert_eq!(
        local.stats().ingested,
        1,
        "resend must not double-bump local live popularity"
    );
    assert_eq!(remote_engine.stats().ingested, 1, "remote repaired");

    // Fully applied: a third resend short-circuits as deduplicated.
    let resp = client.request("POST", "/v1/ingest", Some(body)).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(json(&resp.body)["deduplicated"].as_bool(), Some(true));
    assert_eq!(local.stats().ingested, 1);
    assert_eq!(remote_engine.stats().ingested, 1);
}

/// The router-restart dedup fix: the router's key windows used to be
/// memory-only, so a restart mid-repair-sequence forgot every consumed
/// key — a client retrying "resend on 502, same key" against the new
/// process would double-bump local live popularity and re-apply to
/// remotes. With a router WAL ([`RouterNode::with_wal`]) the windows are
/// persisted as key stubs and replayed on construction: a resent
/// fully-acked key answers `Deduplicated` before any dispatch, and a
/// mid-repair key (locals applied, a remote still missing it) repairs
/// the remote without touching local counters.
#[test]
fn router_restart_remembers_consumed_keys_mid_repair() {
    let path = scratch("router_dedup");
    let (_, bundle) = fixture();
    let cuts = cut_theta_bands(&bundle.theta, 2);
    let (lo0, hi0) = band_bounds(&cuts, 0);
    let (lo1, hi1) = band_bounds(&cuts, 1);
    let local = Arc::new(ServingEngine::new(
        bundle.slice_theta_band(lo0, hi0),
        EngineConfig::default(),
    ));
    let remote_engine = Arc::new(ServingEngine::new(
        bundle.slice_theta_band(lo1, hi1),
        EngineConfig::default(),
    ));
    let flaky = FlakyPeer::new(
        Arc::new(Frontend::Single(Arc::clone(&remote_engine))) as Arc<dyn PeerTransport>
    );
    let routes = || {
        vec![
            ShardRoute::Local(Arc::clone(&local)),
            ShardRoute::Remote(Arc::clone(&flaky) as Arc<dyn PeerTransport>),
        ]
    };
    let router =
        RouterNode::with_wal(Arc::clone(&bundle.theta), cuts.clone(), routes(), &path).unwrap();

    // "full-1" lands everywhere: both windows remember it.
    let ack = router
        .ingest_keyed(Some("full-1"), UserId(0), ItemId(1), 4.0)
        .unwrap();
    assert_eq!(ack, IngestAck::Applied);

    // "partial-1" fails on the remote hop after the local slice applied:
    // the local window remembers it, the fully-acked window must not.
    flaky.fail_ingests(1);
    router
        .ingest_keyed(Some("partial-1"), UserId(0), ItemId(2), 3.0)
        .expect_err("partial fan-out must not be acked");
    assert_eq!(local.stats().ingested, 2, "local slice applied both");
    assert_eq!(remote_engine.stats().ingested, 1, "remote missed partial-1");

    // Kill the router mid-repair-sequence; the client's retry loop does
    // not know and will resend both keys against the next process.
    drop(router);
    let router = RouterNode::with_wal(Arc::clone(&bundle.theta), cuts, routes(), &path).unwrap();

    // The fully-acked key short-circuits before any dispatch — the
    // remote engine's counter proves no route saw the resend.
    let ack = router
        .ingest_keyed(Some("full-1"), UserId(0), ItemId(1), 4.0)
        .unwrap();
    assert_eq!(ack, IngestAck::Deduplicated, "restart forgot full-1");
    assert_eq!(remote_engine.stats().ingested, 1, "dedup must not dispatch");
    assert_eq!(local.stats().ingested, 2);

    // The mid-repair key repairs the remote, locals stay bumped once.
    let ack = router
        .ingest_keyed(Some("partial-1"), UserId(0), ItemId(2), 3.0)
        .unwrap();
    assert_eq!(ack, IngestAck::Applied);
    assert_eq!(remote_engine.stats().ingested, 2, "remote repaired");
    assert_eq!(
        local.stats().ingested,
        2,
        "restart + resend must not double-bump local live popularity"
    );

    // And the repair itself is durable: a further restart still answers
    // the third resend as deduplicated.
    drop(router);
    let cuts = cut_theta_bands(&bundle.theta, 2);
    let router = RouterNode::with_wal(Arc::clone(&bundle.theta), cuts, routes(), &path).unwrap();
    let ack = router
        .ingest_keyed(Some("partial-1"), UserId(0), ItemId(2), 3.0)
        .unwrap();
    assert_eq!(ack, IngestAck::Deduplicated);
    assert_eq!(remote_engine.stats().ingested, 2);
    assert_eq!(local.stats().ingested, 2);
    std::fs::remove_file(&path).ok();
}

/// A WAL whose records are outside the artifact's id space is a
/// deployment error (wrong pairing) and must be refused loudly — never
/// silently dropped, never applied.
#[test]
fn recovery_refuses_wal_from_wrong_artifact() {
    let path = scratch("wrong_artifact");
    {
        let (log, _) = DurableLog::open(DurableConfig::new(&path)).unwrap();
        log.append(Some("w0"), 0, UserId(999_999), ItemId(0), 3.0)
            .unwrap();
    }
    let (_, bundle) = fixture();
    let engine = ShardedEngine::new(bundle, ShardConfig::quantile(2));
    let err = engine
        .attach_durable(DurableConfig::new(&path))
        .expect_err("a foreign WAL must be refused");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert_eq!(engine.pending_ingests(), 0, "nothing may apply");
    std::fs::remove_file(&path).ok();
}

/// Missing and empty WAL files are clean cold starts, and a fresh attach
/// surfaces zeroed stats.
#[test]
fn missing_wal_is_a_clean_cold_start() {
    let path = scratch("cold_start");
    let (_, bundle) = fixture();
    let engine = ShardedEngine::new(bundle, ShardConfig::quantile(2));
    assert!(engine.wal_stats().is_none(), "no stats before attach");
    let replay = engine.attach_durable(DurableConfig::new(&path)).unwrap();
    assert_eq!((replay.records, replay.bytes), (0, 0));
    assert!(!replay.corrupted);
    let stats = engine.wal_stats().expect("stats after attach");
    assert_eq!((stats.records, stats.appends, stats.dedup_hits), (0, 0, 0));
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// 4. The two-process SIGKILL oracle
// ---------------------------------------------------------------------------

/// Child half of the SIGKILL test: when `GANC_WAL_CHILD` is set (to
/// `"<artifact>|<wal>"`), become a durable shard node — load the
/// artifact, attach the WAL, serve HTTP, announce the port, and block
/// until the parent closes stdin (or SIGKILLs us mid-storm). Without the
/// variable (a normal `cargo test` run) this is a no-op.
#[test]
fn child_node_entrypoint() {
    let Ok(spec) = std::env::var("GANC_WAL_CHILD") else {
        return;
    };
    let (artifact, wal) = spec.split_once('|').expect("artifact|wal");
    let bundle = ModelBundle::load(artifact).expect("load artifact");
    let engine = Arc::new(ShardedEngine::new(bundle, ShardConfig::quantile(2)));
    let mut cfg = DurableConfig::new(wal);
    cfg.artifact_path = Some(PathBuf::from(artifact));
    engine.attach_durable(cfg).expect("attach WAL");
    let server = HttpServer::bind(
        Frontend::Sharded(engine),
        Some(RefitHook {
            fitter: item_avg_fitter(),
            cfg: fit_cfg(),
            cadence: None,
        }),
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .expect("bind child node");
    println!("LISTENING {}", server.local_addr());
    std::io::stdout().flush().unwrap();
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
}

/// Spawn this test binary as a durable shard node and return (process,
/// announced address).
fn spawn_node(artifact: &Path, wal: &Path) -> (Child, String) {
    let mut child = Command::new(std::env::current_exe().unwrap())
        .args(["child_node_entrypoint", "--exact", "--nocapture"])
        .env(
            "GANC_WAL_CHILD",
            format!("{}|{}", artifact.display(), wal.display()),
        )
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn child node");
    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("child exited before announcing")
            .expect("read child stdout");
        // libtest prints `test child_node_entrypoint ... ` without a trailing
        // newline before the test body runs, so the announcement can share a
        // line with the harness banner — match it as a substring.
        if let Some(pos) = line.find("LISTENING ") {
            break line[pos + "LISTENING ".len()..].trim().to_string();
        }
    };
    // Keep draining stdout so the child's harness never hits a broken pipe
    // when it prints its summary; the thread exits once the pipe closes.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

/// The tentpole oracle: SIGKILL a real node mid-keyed-ingest-storm,
/// restart it on the same WAL + artifact, resend the whole storm under
/// the same keys (acknowledged ones must come back `deduplicated`),
/// refit, and verify every user's recommendations equal a from-scratch
/// fit on base train + the full storm. Also pins the `/v1/healthz` WAL
/// surface across the restart.
#[test]
fn sigkill_mid_storm_recovers_to_from_scratch_fit() {
    let artifact = scratch("sigkill_artifact");
    let wal = scratch("sigkill_wal");
    let (train, bundle) = fixture();
    let n_users = bundle.n_users();
    let sent = storm(60, n_users, bundle.n_items());
    bundle.save(&artifact).expect("save artifact");

    // --- first life: keyed storm, SIGKILL once ≥20 acks are in ---
    let (mut child, addr) = spawn_node(&artifact, &wal);
    let acked = Arc::new(AtomicUsize::new(0));
    let ack_flags: Vec<bool> = std::thread::scope(|scope| {
        let storm_thread = {
            let acked = Arc::clone(&acked);
            let addr = addr.clone();
            let sent = sent.clone();
            scope.spawn(move || {
                let mut client = HttpClient::new(addr);
                let mut flags = vec![false; sent.len()];
                for (k, &(u, i, r)) in sent.iter().enumerate() {
                    let body = format!("{{\"user\":{},\"item\":{},\"rating\":{}}}", u.0, i.0, r);
                    match client.request_keyed(
                        "POST",
                        "/v1/ingest",
                        Some(&body),
                        &format!("crash-{k}"),
                    ) {
                        Ok(resp) if resp.status == 200 => {
                            flags[k] = true;
                            acked.fetch_add(1, Ordering::SeqCst);
                        }
                        // Killed under us: the rest of the storm is lost
                        // in flight — exactly the scenario under test.
                        _ => {}
                    }
                }
                flags
            })
        };
        // Kill mid-storm, not after it: wait for a healthy prefix of
        // acks, then SIGKILL while requests are still in flight.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        while acked.load(Ordering::SeqCst) < 20 {
            assert!(
                std::time::Instant::now() < deadline,
                "child never acknowledged 20 ingests"
            );
            std::thread::yield_now();
        }
        child.kill().expect("SIGKILL child");
        child.wait().expect("reap child");
        storm_thread.join().expect("storm thread panicked")
    });
    let acked_n = ack_flags.iter().filter(|&&f| f).count();
    assert!(acked_n >= 20, "storm acked only {acked_n} before the kill");

    // --- second life: same WAL, same artifact ---
    let (mut child, addr) = spawn_node(&artifact, &wal);
    let mut client = HttpClient::new(addr);

    // Replay must have recovered at least every acknowledged ingest
    // (unacked in-flight ones may or may not have reached the log).
    let resp = client.request("GET", "/v1/healthz", None).unwrap();
    assert_eq!(resp.status, 200);
    let health: Value = tinyjson::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    let recovered = health["wal"]["records"]
        .as_u64()
        .expect("healthz wal.records");
    assert!(
        recovered >= acked_n as u64,
        "recovered {recovered} < acked {acked_n}: an acknowledged ingest was lost"
    );

    // Exactly-once: resend the ENTIRE storm under the original keys.
    // Acknowledged ingests must dedup; lost ones apply now. Afterward the
    // node deterministically holds train + the full storm.
    for (k, &(u, i, r)) in sent.iter().enumerate() {
        let body = format!("{{\"user\":{},\"item\":{},\"rating\":{}}}", u.0, i.0, r);
        let resp = client
            .request_keyed("POST", "/v1/ingest", Some(&body), &format!("crash-{k}"))
            .unwrap();
        assert_eq!(resp.status, 200, "resend {k} failed");
        let v: Value = tinyjson::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        if ack_flags[k] {
            assert_eq!(
                v["deduplicated"].as_bool(),
                Some(true),
                "acked ingest {k} re-applied instead of deduplicating"
            );
        }
    }

    // Quiesce: one refit folds the replayed + resent log into a new
    // artifact and truncates the WAL down to key stubs.
    let resp = client.request("POST", "/admin/refit", None).unwrap();
    assert_eq!(resp.status, 200);

    // The oracle comparison, over the wire, for every user.
    let oracle = oracle_engine(&train, &sent);
    for u in 0..n_users {
        let resp = client
            .request("GET", &format!("/v1/recommend/{u}"), None)
            .unwrap();
        assert_eq!(resp.status, 200, "user {u}");
        let v: Value = tinyjson::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let got: Vec<u32> = v["items"]
            .as_array()
            .unwrap()
            .iter()
            .map(|i| i.as_u64().unwrap() as u32)
            .collect();
        let expect: Vec<u32> = oracle
            .recommend(UserId(u))
            .unwrap()
            .iter()
            .map(|i| i.0)
            .collect();
        assert_eq!(got, expect, "user {u}: recovered node ≠ from-scratch fit");
    }

    drop(child.stdin.take());
    child.wait().expect("child shutdown");
    std::fs::remove_file(&artifact).ok();
    std::fs::remove_file(&wal).ok();
}
